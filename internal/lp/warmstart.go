package lp

import "math"

// feasTol is the absolute tolerance used when validating a warm-start
// candidate against bounds and constraints.
const feasTol = 1e-6

// checkWarmStart validates the model's warm-start candidate and, when it
// is feasible, returns a snapped copy (integer variables rounded to their
// nearest integer) together with its objective value. A candidate with
// the wrong length, an out-of-bounds or non-integral component, or any
// violated constraint is rejected.
func (m *Model) checkWarmStart() (x []float64, obj float64, ok bool) {
	ws := m.warmStart
	if ws == nil || len(ws) != len(m.vars) {
		return nil, 0, false
	}
	x = append([]float64(nil), ws...)
	for i, v := range m.vars {
		xi := x[i]
		if math.IsNaN(xi) || math.IsInf(xi, 0) {
			return nil, 0, false
		}
		if v.integer {
			r := math.Round(xi)
			if math.Abs(xi-r) > intTol {
				return nil, 0, false
			}
			xi = r
			x[i] = r
		}
		if xi < v.lo-feasTol || xi > v.hi+feasTol {
			return nil, 0, false
		}
		obj += v.obj * xi
	}
	for _, c := range m.cons {
		lhs := 0.0
		scale := 1.0 // violation tolerance scales with coefficient magnitude
		for _, t := range c.terms {
			lhs += t.Coef * x[t.Var]
			if a := math.Abs(t.Coef); a > scale {
				scale = a
			}
		}
		tol := feasTol * scale
		switch c.op {
		case LE:
			if lhs > c.rhs+tol {
				return nil, 0, false
			}
		case GE:
			if lhs < c.rhs-tol {
				return nil, 0, false
			}
		default: // EQ
			if math.Abs(lhs-c.rhs) > tol {
				return nil, 0, false
			}
		}
	}
	return x, obj, true
}
