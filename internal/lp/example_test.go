package lp_test

import (
	"fmt"
	"math"

	"dsp/internal/lp"
)

// Solve a small production-planning LP.
func Example() {
	m := lp.NewModel("production", lp.Maximize)
	x := m.AddVar(0, math.Inf(1), 3, "x")
	y := m.AddVar(0, math.Inf(1), 5, "y")
	m.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 4, "plant1")
	m.AddConstraint([]lp.Term{{Var: y, Coef: 2}}, lp.LE, 12, "plant2")
	m.AddConstraint([]lp.Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, lp.LE, 18, "plant3")

	s := m.Solve()
	fmt.Printf("%v: objective %.0f at x=%.0f y=%.0f\n",
		s.Status, s.Objective, s.Value(x), s.Value(y))
	// Output:
	// optimal: objective 36 at x=2 y=6
}

// Solve a 0/1 knapsack exactly with branch and bound.
func ExampleModel_Solve_integer() {
	m := lp.NewModel("knapsack", lp.Maximize)
	items := []struct{ value, weight float64 }{
		{60, 10}, {100, 20}, {120, 30},
	}
	var terms []lp.Term
	var vars []lp.VarID
	for _, it := range items {
		v := m.AddBinVar(it.value, "")
		vars = append(vars, v)
		terms = append(terms, lp.Term{Var: v, Coef: it.weight})
	}
	m.AddConstraint(terms, lp.LE, 50, "capacity")

	s := m.Solve()
	fmt.Printf("take items:")
	for i, v := range vars {
		if s.Value(v) > 0.5 {
			fmt.Printf(" %d", i)
		}
	}
	fmt.Printf(" (value %.0f)\n", s.Objective)
	// Output:
	// take items: 1 2 (value 220)
}
