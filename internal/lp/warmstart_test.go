package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// betterEq reports a is at least as good as b for the model's sense.
func betterEq(m *Model, a, b float64) bool {
	if m.sense == Minimize {
		return a <= b+1e-9
	}
	return a >= b-1e-9
}

// TestWarmStartNeverWorse is the warm-start quality guarantee: seeding
// branch-and-bound with a feasible candidate must yield an objective at
// least as good as both the seed's and an unseeded solve's, under
// identical budgets. The seed here is the cold solve's own solution —
// always feasible — re-solved under a range of node budgets.
func TestWarmStartNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomILP(r)
		cold := m.Solve()
		if !cold.HasSolution() {
			return true // infeasible/unbounded instance; covered elsewhere
		}
		seedObj := cold.Objective
		for _, budget := range []int{1, 2, 5, 0} {
			m.MaxNodes = budget
			m.SetWarmStart(cold.X)
			warm := m.Solve()
			m.SetWarmStart(nil)
			coldB := m.Solve()

			if !warm.HasSolution() {
				t.Logf("seed %d budget %d: warm solve lost the feasible seed (status %v)", seed, budget, warm.Status)
				return false
			}
			if !warm.WarmStarted {
				t.Logf("seed %d budget %d: feasible seed not accepted", seed, budget)
				return false
			}
			if !feasible(m, warm.X) {
				t.Logf("seed %d budget %d: warm solution infeasible", seed, budget)
				return false
			}
			if !betterEq(m, warm.Objective, seedObj) {
				t.Logf("seed %d budget %d: warm %v worse than seed %v", seed, budget, warm.Objective, seedObj)
				return false
			}
			if coldB.HasSolution() && !betterEq(m, warm.Objective, coldB.Objective) {
				t.Logf("seed %d budget %d: warm %v worse than cold %v", seed, budget, warm.Objective, coldB.Objective)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartInfeasibleSeedIgnored: a seed violating bounds,
// integrality, or a constraint must be silently rejected and leave the
// solve's result identical to a cold solve.
func TestWarmStartInfeasibleSeedIgnored(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		m := randomILP(r)
		cold := m.Solve()

		bad := make([]float64, len(m.vars))
		for i := range bad {
			bad[i] = m.vars[i].hi + 10 // out of bounds everywhere
			if math.IsInf(bad[i], 1) {
				bad[i] = 1e12
			}
		}
		m.SetWarmStart(bad)
		warm := m.Solve()
		if warm.WarmStarted {
			t.Fatalf("trial %d: out-of-bounds seed accepted", trial)
		}
		if warm.Status != cold.Status || warm.Objective != cold.Objective {
			t.Fatalf("trial %d: rejected seed changed the result: %v/%v vs %v/%v",
				trial, warm.Status, warm.Objective, cold.Status, cold.Objective)
		}
	}
}

// TestWarmStartWrongLengthIgnored: a seed of the wrong dimension is
// rejected rather than panicking or corrupting the solve.
func TestWarmStartWrongLengthIgnored(t *testing.T) {
	m := NewModel("wrong-len", Minimize)
	x := m.AddIntVar(0, 5, 1, "x")
	m.AddConstraint([]Term{{x, 1}}, GE, 2, "floor")
	m.SetWarmStart([]float64{1, 2, 3})
	s := m.Solve()
	if s.WarmStarted {
		t.Fatal("wrong-length seed accepted")
	}
	if s.Status != Optimal || s.Objective != 2 {
		t.Fatalf("got %v/%v, want optimal/2", s.Status, s.Objective)
	}
}

// TestWarmStartGuaranteesIncumbentUnderExhaustedBudget: with a node
// budget too small to find any incumbent cold, a feasible seed must turn
// the empty NodeLimit/Aborted result into a usable Incumbent carrying at
// least the seed's objective.
func TestWarmStartGuaranteesIncumbentUnderExhaustedBudget(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	found := false
	for trial := 0; trial < 300; trial++ {
		m := randomILP(r)
		exact := m.Solve()
		if exact.Status != Optimal || exact.Nodes < 2 {
			continue
		}
		m.MaxNodes = 1
		cold := m.Solve()
		if cold.HasSolution() {
			continue // budget 1 was enough; need a starved case
		}
		found = true
		m.SetWarmStart(exact.X)
		warm := m.Solve()
		if !warm.HasSolution() {
			t.Fatalf("trial %d: seeded solve returned %v under budget 1", trial, warm.Status)
		}
		if !betterEq(m, warm.Objective, exact.Objective) {
			t.Fatalf("trial %d: seeded objective %v worse than seed %v", trial, warm.Objective, exact.Objective)
		}
	}
	if !found {
		t.Skip("no instance starved under budget 1; generator too weak")
	}
}

// TestWarmStartSnapsNearIntegers: integer components within tolerance of
// an integer are snapped, not rejected.
func TestWarmStartSnapsNearIntegers(t *testing.T) {
	m := NewModel("snap", Minimize)
	x := m.AddIntVar(0, 5, 1, "x")
	m.AddConstraint([]Term{{x, 1}}, GE, 2, "floor")
	m.SetWarmStart([]float64{3 + 1e-9})
	s := m.Solve()
	if !s.WarmStarted {
		t.Fatal("near-integral seed rejected")
	}
	if s.Status != Optimal || s.Objective != 2 {
		t.Fatalf("got %v/%v, want optimal/2", s.Status, s.Objective)
	}
}
