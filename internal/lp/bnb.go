package lp

import "math"

const intTol = 1e-6

// branchAndBound solves the mixed-integer model by depth-first branch and
// bound over the LP relaxation. Branching variable: most fractional
// integer variable; children explored floor-side first (a good heuristic
// for scheduling models where small start slots are preferred).
func (m *Model) branchAndBound(lo, hi []float64) *Solution {
	maxNodes := m.MaxNodes
	if maxNodes == 0 {
		maxNodes = 50000
	}

	type node struct {
		lo, hi []float64
	}
	stack := []node{{lo: lo, hi: hi}}

	var best *Solution
	worse := func(obj float64) bool {
		if best == nil {
			return false
		}
		if m.sense == Minimize {
			return obj >= best.Objective-1e-9
		}
		return obj <= best.Objective+1e-9
	}

	nodes := 0
	for len(stack) > 0 {
		if nodes >= maxNodes {
			if best != nil {
				best.Status = NodeLimit
				best.Nodes = nodes
				return best
			}
			return &Solution{Status: NodeLimit, Nodes: nodes}
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		rel := m.solveLP(nd.lo, nd.hi)
		if rel.Status == Unbounded {
			// A bounded-integer model with an unbounded relaxation: report
			// unbounded (integrality cannot rescue a truly unbounded LP
			// when the integer variables are bounded).
			rel.Nodes = nodes
			return rel
		}
		if rel.Status != Optimal {
			continue // infeasible or iteration-limited node: prune
		}
		if worse(rel.Objective) {
			continue
		}
		// Find most fractional integer variable.
		branch := -1
		bestFrac := intTol
		for i, v := range m.vars {
			if !v.integer {
				continue
			}
			f := rel.X[i] - math.Floor(rel.X[i])
			d := math.Min(f, 1-f)
			if d > bestFrac {
				bestFrac = d
				branch = i
			}
		}
		if branch == -1 {
			// Integral (within tolerance): round and accept as incumbent.
			xi := append([]float64(nil), rel.X...)
			for i, v := range m.vars {
				if v.integer {
					xi[i] = math.Round(xi[i])
				}
			}
			cand := &Solution{Status: Optimal, Objective: rel.Objective, X: xi}
			if best == nil || !worse(cand.Objective) {
				best = cand
			}
			continue
		}
		val := rel.X[branch]
		// Ceil child pushed first so the floor child pops first (DFS).
		upLo := append([]float64(nil), nd.lo...)
		upHi := nd.hi
		upLo[branch] = math.Ceil(val)
		if upLo[branch] <= upHi[branch]+eps {
			stack = append(stack, node{lo: upLo, hi: upHi})
		}
		dnLo := nd.lo
		dnHi := append([]float64(nil), nd.hi...)
		dnHi[branch] = math.Floor(val)
		if dnLo[branch] <= dnHi[branch]+eps {
			stack = append(stack, node{lo: dnLo, hi: dnHi})
		}
	}
	if best == nil {
		return &Solution{Status: Infeasible, Nodes: nodes}
	}
	best.Nodes = nodes
	return best
}
