package lp

import "math"

const intTol = 1e-6

// branchAndBound solves the mixed-integer model by depth-first branch and
// bound over the LP relaxation. Branching variable: most fractional
// integer variable; children explored floor-side first (a good heuristic
// for scheduling models where small start slots are preferred).
//
// The search is anytime: it respects the model's node budget (MaxNodes)
// plus the shared pivot/time budgets in ctx, and when any of them runs
// out it returns the best incumbent found so far as Status Incumbent (or
// the bare limit status when no incumbent exists yet). Every exit path
// returns a fresh Solution with Status, Nodes, and Pivots set — the
// stored incumbent is never aliased, so callers may hold the result
// across later solves.
func (m *Model) branchAndBound(lo, hi []float64, ctx *solveCtx) *Solution {
	maxNodes := m.MaxNodes
	if maxNodes == 0 {
		maxNodes = 50000
	}

	type node struct {
		lo, hi []float64
	}
	stack := []node{{lo: lo, hi: hi}}

	var best *Solution
	// A feasible warm-start candidate becomes the initial incumbent: it
	// bounds the search from the first node, and under exhausted budgets it
	// guarantees a usable Incumbent result instead of an empty one. The
	// search can only replace it with something strictly better, so a
	// seeded solve is never worse than the seed or than a cold solve under
	// the same budgets.
	warmUsed := false
	if xw, objw, ok := m.checkWarmStart(); ok {
		best = &Solution{Status: Optimal, Objective: objw, X: xw}
		warmUsed = true
	}
	worse := func(obj float64) bool {
		if best == nil {
			return false
		}
		if m.sense == Minimize {
			return obj >= best.Objective-1e-9
		}
		return obj <= best.Objective+1e-9
	}

	nodes := 0
	// sawLimit records that at least one node relaxation hit its iteration
	// cap. Such nodes are skipped without being explored, so the search is
	// no longer exhaustive: a drained stack proves neither optimality nor
	// infeasibility.
	sawLimit := false

	// final renders the outcome as a fresh Solution: the incumbent (when
	// one exists) is copied, never returned directly, and Status/Nodes/
	// Pivots are set on every path. limit describes why the search ended
	// when no incumbent upgrades it.
	final := func(limit Status) *Solution {
		out := &Solution{Status: limit, Nodes: nodes, Pivots: ctx.pivots, WarmStarted: warmUsed}
		if best != nil {
			if limit == Optimal {
				out.Status = Optimal
			} else {
				out.Status = Incumbent
			}
			out.Objective = best.Objective
			out.X = append([]float64(nil), best.X...)
		}
		return out
	}

	for len(stack) > 0 {
		if nodes >= maxNodes {
			return final(NodeLimit)
		}
		if ctx.expired || ctx.overTime() {
			return final(Aborted)
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		rel := m.solveLP(nd.lo, nd.hi, ctx)
		if rel.Status == Unbounded {
			// A bounded-integer model with an unbounded relaxation: report
			// unbounded (integrality cannot rescue a truly unbounded LP
			// when the integer variables are bounded).
			rel.Nodes = nodes
			rel.Pivots = ctx.pivots
			return rel
		}
		if rel.Status == IterLimit {
			if ctx.expired {
				return final(Aborted)
			}
			sawLimit = true // pruned without proof; the search is inexact now
			continue
		}
		if rel.Status != Optimal {
			continue // infeasible node: prune
		}
		if worse(rel.Objective) {
			continue
		}
		// Find most fractional integer variable.
		branch := -1
		bestFrac := intTol
		for i, v := range m.vars {
			if !v.integer {
				continue
			}
			f := rel.X[i] - math.Floor(rel.X[i])
			d := math.Min(f, 1-f)
			if d > bestFrac {
				bestFrac = d
				branch = i
			}
		}
		if branch == -1 {
			// Integral (within tolerance): round and accept as incumbent.
			xi := append([]float64(nil), rel.X...)
			for i, v := range m.vars {
				if v.integer {
					xi[i] = math.Round(xi[i])
				}
			}
			cand := &Solution{Status: Optimal, Objective: rel.Objective, X: xi}
			if best == nil || !worse(cand.Objective) {
				best = cand
			}
			continue
		}
		val := rel.X[branch]
		// Ceil child pushed first so the floor child pops first (DFS).
		upLo := append([]float64(nil), nd.lo...)
		upHi := nd.hi
		upLo[branch] = math.Ceil(val)
		if upLo[branch] <= upHi[branch]+eps {
			stack = append(stack, node{lo: upLo, hi: upHi})
		}
		dnLo := nd.lo
		dnHi := append([]float64(nil), nd.hi...)
		dnHi[branch] = math.Floor(val)
		if dnLo[branch] <= dnHi[branch]+eps {
			stack = append(stack, node{lo: dnLo, hi: dnHi})
		}
	}
	switch {
	case best != nil && !sawLimit:
		return final(Optimal)
	case best != nil:
		// Some subtree was pruned only because its relaxation ran out of
		// iterations; the incumbent is feasible but optimality is unproven.
		return final(Aborted) // renders as Incumbent
	case sawLimit:
		// Infeasibility is unproven for the same reason.
		return final(Aborted)
	default:
		return final(Infeasible)
	}
}
