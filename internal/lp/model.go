// Package lp is a pure-Go linear and mixed-integer linear programming
// solver. It replaces the CPLEX dependency of the DSP paper: the offline
// dependency-aware scheduler formulates its makespan-minimization problem
// as an ILP (Section III) and solves it here. The solver is a dense
// two-phase primal simplex with Bland's anti-cycling rule, wrapped by a
// depth-first branch-and-bound for integer variables. It is designed for
// the small-to-medium instances the scheduler produces per period, with
// exact results verified by the package tests; large instances fall back
// to the scheduler's relax-and-round heuristic, mirroring the paper's own
// relaxation approach.
package lp

import (
	"fmt"
	"math"
	"time"
)

// Sense is the optimization direction.
type Sense int

// Optimization senses.
const (
	Minimize Sense = iota
	Maximize
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // Σ aᵢxᵢ ≤ b
	GE           // Σ aᵢxᵢ ≥ b
	EQ           // Σ aᵢxᵢ = b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// VarID indexes a variable within its model.
type VarID int

// Term is one coefficient–variable product in a linear expression.
type Term struct {
	Var  VarID
	Coef float64
}

type variable struct {
	name    string
	lo, hi  float64
	obj     float64
	integer bool
}

type constraint struct {
	name  string
	terms []Term
	op    Op
	rhs   float64
}

// Model is a linear program under construction. Build it with AddVar /
// AddConstraint, then call Solve.
type Model struct {
	name  string
	sense Sense
	vars  []variable
	cons  []constraint

	// MaxIters caps simplex pivots per LP solve (0 = default).
	MaxIters int
	// MaxNodes caps branch-and-bound nodes (0 = default).
	MaxNodes int
	// MaxPivots caps the total simplex pivots across the whole solve —
	// all branch-and-bound node relaxations combined — making the solve
	// anytime: when the budget runs out, the best incumbent found so far
	// is returned with Status Incumbent (or Aborted when none exists).
	// 0 = unlimited beyond the per-LP MaxIters cap.
	MaxPivots int
	// MaxTime caps the wall-clock duration of the solve (0 = unlimited).
	// Checked between branch-and-bound nodes, so one LP relaxation may
	// overshoot; combine with MaxPivots for a hard bound. Wall-clock
	// budgets are inherently nondeterministic — callers that need
	// reproducible runs (the simulator) should prefer MaxNodes/MaxPivots.
	MaxTime time.Duration
	// Clock overrides the time source used for MaxTime (nil = time.Now).
	Clock func() time.Time

	// warmStart, when non-nil, seeds branch-and-bound with a candidate
	// assignment (see SetWarmStart).
	warmStart []float64
}

// SetWarmStart provides a candidate assignment — one value per variable,
// in AddVar order — that seeds the branch-and-bound incumbent. Before the
// search starts the candidate is verified against the variable bounds,
// integrality, and every constraint; an infeasible candidate is silently
// ignored, so callers may pass a stale or heuristic guess without risking
// correctness. A feasible seed can only tighten pruning: the returned
// objective is never worse than either the seed's or an unseeded solve's
// under the same budgets, and under exhausted budgets the seed guarantees
// an Incumbent instead of an empty Aborted/NodeLimit result. Pure-LP
// solves (no integer variables) ignore the seed. Pass nil to clear.
func (m *Model) SetWarmStart(x []float64) {
	if x == nil {
		m.warmStart = nil
		return
	}
	m.warmStart = append([]float64(nil), x...)
}

// NewModel creates an empty model.
func NewModel(name string, sense Sense) *Model {
	return &Model{name: name, sense: sense}
}

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.vars) }

// NumConstraints returns the number of constraints added so far.
func (m *Model) NumConstraints() int { return len(m.cons) }

// AddVar adds a continuous variable with bounds [lo,hi] and objective
// coefficient obj. lo must be finite (use 0 for the usual nonnegative
// variable); hi may be math.Inf(1).
func (m *Model) AddVar(lo, hi, obj float64, name string) VarID {
	return m.addVar(lo, hi, obj, false, name)
}

// AddIntVar adds an integer variable with bounds [lo,hi].
func (m *Model) AddIntVar(lo, hi, obj float64, name string) VarID {
	return m.addVar(lo, hi, obj, true, name)
}

// AddBinVar adds a 0/1 variable.
func (m *Model) AddBinVar(obj float64, name string) VarID {
	return m.addVar(0, 1, obj, true, name)
}

func (m *Model) addVar(lo, hi, obj float64, integer bool, name string) VarID {
	if math.IsInf(lo, -1) || math.IsNaN(lo) {
		panic(fmt.Sprintf("lp: variable %q must have a finite lower bound", name))
	}
	if hi < lo {
		panic(fmt.Sprintf("lp: variable %q has hi %v < lo %v", name, hi, lo))
	}
	m.vars = append(m.vars, variable{name: name, lo: lo, hi: hi, obj: obj, integer: integer})
	return VarID(len(m.vars) - 1)
}

// AddConstraint adds Σ terms (op) rhs. Terms referencing the same variable
// twice are summed. Unknown variable IDs panic.
func (m *Model) AddConstraint(terms []Term, op Op, rhs float64, name string) {
	merged := make(map[VarID]float64, len(terms))
	for _, t := range terms {
		if int(t.Var) < 0 || int(t.Var) >= len(m.vars) {
			panic(fmt.Sprintf("lp: constraint %q references unknown var %d", name, t.Var))
		}
		merged[t.Var] += t.Coef
	}
	out := make([]Term, 0, len(merged))
	for v := VarID(0); int(v) < len(m.vars); v++ {
		if c, ok := merged[v]; ok && c != 0 {
			out = append(out, Term{Var: v, Coef: c})
		}
	}
	m.cons = append(m.cons, constraint{name: name, terms: out, op: op, rhs: rhs})
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes. The lattice for budgeted solves:
//
//   - Optimal: solved to proven optimality.
//   - Incumbent: a budget (nodes, pivots, or time) ran out — or pruning
//     was inexact because a node LP hit its iteration cap — after at
//     least one integer-feasible incumbent was found; X holds the best
//     one. Anytime callers can use it as a valid (possibly suboptimal)
//     solution.
//   - NodeLimit: the branch-and-bound node budget ran out before any
//     incumbent was found.
//   - Infeasible: proven infeasible (every branch pruned exactly).
//   - Aborted: a pivot/time budget ran out — or infeasibility could not
//     be proven because node LPs hit their iteration cap — with no
//     incumbent; nothing is known about the model.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
	NodeLimit
	Incumbent
	Aborted
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case NodeLimit:
		return "node-limit"
	case Incumbent:
		return "incumbent"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution holds the result of a solve.
type Solution struct {
	Status    Status
	Objective float64
	X         []float64
	// Nodes is the number of branch-and-bound nodes explored (0 for pure
	// LPs).
	Nodes int
	// Pivots is the total number of simplex pivots performed across the
	// solve (all branch-and-bound relaxations combined).
	Pivots int
	// WarmStarted reports that the SetWarmStart candidate passed the
	// feasibility check and seeded the branch-and-bound incumbent.
	WarmStarted bool
}

// Value returns the solved value of v.
func (s *Solution) Value(v VarID) float64 { return s.X[v] }

// HasSolution reports whether X holds a usable feasible assignment: the
// solve either finished (Optimal) or ran out of budget after finding at
// least one incumbent (Incumbent).
func (s *Solution) HasSolution() bool {
	return s.Status == Optimal || s.Status == Incumbent
}

// Solve optimizes the model. Pure LPs go straight to the simplex; models
// with integer variables run branch-and-bound. The returned Solution
// holds a feasible assignment whenever HasSolution reports true; other
// statuses carry only the diagnosis (see Status). The returned Solution
// never aliases solver-internal state, so it stays valid across later
// solves of the same model.
func (m *Model) Solve() *Solution {
	ctx := m.newSolveCtx()
	hasInt := false
	for _, v := range m.vars {
		if v.integer {
			hasInt = true
			break
		}
	}
	lo := make([]float64, len(m.vars))
	hi := make([]float64, len(m.vars))
	for i, v := range m.vars {
		lo[i] = v.lo
		hi[i] = v.hi
	}
	if !hasInt {
		sol := m.solveLP(lo, hi, ctx)
		sol.Pivots = ctx.pivots
		return sol
	}
	return m.branchAndBound(lo, hi, ctx)
}

// solveCtx carries the work budgets shared by every LP solved within one
// Solve call: branch-and-bound re-solves relaxations many times, and the
// pivot and time budgets are global across them, not per node.
type solveCtx struct {
	pivots    int // total pivots performed so far
	maxPivots int // 0 = unlimited
	deadline  time.Time
	now       func() time.Time // nil = no time budget
	expired   bool             // the global pivot budget ran out mid-LP
}

func (m *Model) newSolveCtx() *solveCtx {
	ctx := &solveCtx{maxPivots: m.MaxPivots}
	if m.MaxTime > 0 {
		now := m.Clock
		if now == nil {
			now = time.Now
		}
		ctx.now = now
		ctx.deadline = now().Add(m.MaxTime)
	}
	return ctx
}

// overTime reports whether the wall-clock budget has run out.
func (ctx *solveCtx) overTime() bool {
	return ctx.now != nil && ctx.now().After(ctx.deadline)
}

// iterBudget caps a single LP's iteration count at the smaller of its own
// limit and what remains of the global pivot budget.
func (ctx *solveCtx) iterBudget(perLP int) int {
	if ctx.maxPivots <= 0 {
		return perLP
	}
	if rem := ctx.maxPivots - ctx.pivots; rem < perLP {
		if rem < 0 {
			return 0
		}
		return rem
	}
	return perLP
}

// charge records pivots performed and flags budget exhaustion when an LP
// was cut short by the global cap rather than its own.
func (ctx *solveCtx) charge(used int) {
	ctx.pivots += used
	if ctx.maxPivots > 0 && ctx.pivots >= ctx.maxPivots {
		ctx.expired = true
	}
}
