package lp

import "math"

const (
	eps      = 1e-9
	pivotEps = 1e-9
)

// tableau is a dense simplex tableau for min c·x s.t. Ax = b, x ≥ 0 with
// b ≥ 0 after normalization. rows[i] has n+1 entries (last is rhs);
// basis[i] is the basic variable of row i.
type tableau struct {
	rows  [][]float64
	basis []int
	n     int // structural + slack + artificial columns
}

// solveLP solves the continuous relaxation with the given per-variable
// bounds (overriding the model's own bounds; used by branch-and-bound).
// Pivots performed are charged against ctx's global budget; when that
// budget (rather than the per-LP MaxIters) cuts the solve short, ctx is
// marked expired so branch-and-bound can stop instead of mispruning.
func (m *Model) solveLP(lo, hi []float64, ctx *solveCtx) *Solution {
	nv := len(m.vars)

	// Shift every variable by its lower bound: x = lo + y, y >= 0. Track
	// the constant that the shift adds to the objective.
	objConst := 0.0
	c := make([]float64, nv)
	sign := 1.0
	if m.sense == Maximize {
		sign = -1
	}
	for i, v := range m.vars {
		c[i] = sign * v.obj
		objConst += sign * v.obj * lo[i]
	}

	// Materialize rows: model constraints with shifted rhs, then upper
	// bounds as y_i <= hi_i - lo_i.
	type row struct {
		coefs []float64 // length nv over structural vars
		op    Op
		rhs   float64
	}
	var rows []row
	for _, con := range m.cons {
		r := row{coefs: make([]float64, nv), op: con.op, rhs: con.rhs}
		for _, t := range con.terms {
			r.coefs[t.Var] += t.Coef
			r.rhs -= t.Coef * lo[t.Var]
		}
		rows = append(rows, r)
	}
	for i := 0; i < nv; i++ {
		if !math.IsInf(hi[i], 1) {
			ub := hi[i] - lo[i]
			if ub < 0 {
				return &Solution{Status: Infeasible}
			}
			co := make([]float64, nv)
			co[i] = 1
			rows = append(rows, row{coefs: co, op: LE, rhs: ub})
		}
	}

	mRows := len(rows)
	// Column layout: [0,nv) structural, then one slack/surplus per
	// inequality, then artificials as needed.
	nSlack := 0
	for _, r := range rows {
		if r.op != EQ {
			nSlack++
		}
	}
	// Artificials: for rows where, after sign normalization (rhs >= 0), no
	// trivially basic column exists. LE rows with rhs >= 0 can use their
	// slack as the basic var; GE and EQ rows need artificials, as do LE
	// rows whose rhs was negative (they flip to GE-like shape).
	total := nv + nSlack
	t := &tableau{n: total, basis: make([]int, mRows)}
	t.rows = make([][]float64, mRows)
	artCols := []int{}
	slackIdx := 0
	type pend struct{ rowIdx int }
	var needArt []pend

	for i, r := range rows {
		tr := make([]float64, total+1)
		copy(tr, r.coefs)
		rhs := r.rhs
		op := r.op
		if op != EQ {
			s := 1.0
			if op == GE {
				s = -1
			}
			tr[nv+slackIdx] = s
			slackIdx++
		}
		// Normalize rhs >= 0.
		if rhs < 0 {
			for k := range tr {
				tr[k] = -tr[k]
			}
			rhs = -rhs
		}
		tr[total] = rhs
		t.rows[i] = tr
		// Basic column: a slack with coefficient +1.
		basic := -1
		if op != EQ {
			sc := nv + slackIdx - 1
			if tr[sc] > 0.5 { // +1 after any sign flip
				basic = sc
			}
		}
		if basic >= 0 {
			t.basis[i] = basic
		} else {
			needArt = append(needArt, pend{rowIdx: i})
		}
	}

	// Append artificial columns.
	if len(needArt) > 0 {
		add := len(needArt)
		for i := range t.rows {
			nr := make([]float64, total+add+1)
			copy(nr, t.rows[i][:total])
			nr[total+add] = t.rows[i][total]
			t.rows[i] = nr
		}
		for k, p := range needArt {
			col := total + k
			t.rows[p.rowIdx][col] = 1
			t.basis[p.rowIdx] = col
			artCols = append(artCols, col)
		}
		total += add
		t.n = total
	}

	maxIters := m.MaxIters
	if maxIters == 0 {
		maxIters = 20000 + 200*(total+mRows)
	}

	// Phase 1: minimize the sum of artificials.
	if len(artCols) > 0 {
		c1 := make([]float64, total)
		for _, a := range artCols {
			c1[a] = 1
		}
		st, obj1, used := t.iterate(c1, ctx.iterBudget(maxIters))
		ctx.charge(used)
		if st == IterLimit {
			return &Solution{Status: IterLimit}
		}
		if obj1 > 1e-7 {
			return &Solution{Status: Infeasible}
		}
		// Pivot artificials out of the basis where possible.
		isArt := make([]bool, total)
		for _, a := range artCols {
			isArt[a] = true
		}
		for i, b := range t.basis {
			if !isArt[b] {
				continue
			}
			pivoted := false
			for j := 0; j < total; j++ {
				if isArt[j] {
					continue
				}
				if math.Abs(t.rows[i][j]) > pivotEps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: the artificial stays basic at value 0.
				// Zero the row so it cannot interfere.
				for j := 0; j < total; j++ {
					if !isArt[j] {
						t.rows[i][j] = 0
					}
				}
				t.rows[i][total] = 0
			}
		}
		// Forbid artificials from re-entering by zeroing their columns.
		for _, a := range artCols {
			for i := range t.rows {
				if t.basis[i] == a {
					continue
				}
				t.rows[i][a] = 0
			}
		}
	}

	// Phase 2: original objective over all columns (zero for slacks).
	c2 := make([]float64, total)
	copy(c2, c)
	// Artificials get a huge cost so they never re-enter.
	for _, a := range artCols {
		c2[a] = math.Inf(1)
	}
	st, obj, used := t.iterate(c2, ctx.iterBudget(maxIters))
	ctx.charge(used)
	switch st {
	case IterLimit:
		return &Solution{Status: IterLimit}
	case Unbounded:
		return &Solution{Status: Unbounded}
	}

	// Extract structural values, un-shift.
	x := make([]float64, nv)
	for i, b := range t.basis {
		if b < nv {
			x[b] = t.rows[i][len(t.rows[i])-1]
		}
	}
	for i := range x {
		x[i] += lo[i]
		// Clean tiny negatives from rounding.
		if x[i] < lo[i] && x[i] > lo[i]-1e-7 {
			x[i] = lo[i]
		}
	}
	objective := obj + objConst
	if m.sense == Maximize {
		objective = -objective
	}
	return &Solution{Status: Optimal, Objective: objective, X: x}
}

// iterate runs primal simplex pivots minimizing cost over the current
// basis. It returns the final status, objective value, and the number of
// pivots performed.
func (t *tableau) iterate(cost []float64, maxIters int) (Status, float64, int) {
	mRows := len(t.rows)
	total := t.n
	// Reduced costs: z_j - c_j computed via the current basis. Maintain a
	// price row: start from cost and eliminate basic columns.
	z := make([]float64, total+1)
	for j := 0; j <= total; j++ {
		if j < total {
			if math.IsInf(cost[j], 1) {
				z[j] = 0 // artificial columns handled by exclusion below
				continue
			}
			z[j] = -cost[j]
		}
	}
	// Make reduced costs of basic variables zero.
	for i := 0; i < mRows; i++ {
		b := t.basis[i]
		cb := cost[b]
		if math.IsInf(cb, 1) {
			cb = 0
		}
		if cb == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			z[j] += cb * t.rows[i][j]
		}
	}

	inf := func(j int) bool { return j < total && math.IsInf(cost[j], 1) }

	for iter := 0; iter < maxIters; iter++ {
		// Entering: Bland's rule — smallest index with positive reduced
		// cost improvement (z_j > eps means decreasing objective since we
		// store z = cB·B⁻¹A - c).
		enter := -1
		for j := 0; j < total; j++ {
			if inf(j) {
				continue
			}
			if z[j] > eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return Optimal, z[total], iter
		}
		// Ratio test: smallest rhs/col over positive col entries; Bland tie
		// break on basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < mRows; i++ {
			a := t.rows[i][enter]
			if a > pivotEps {
				r := t.rows[i][total] / a
				if r < best-eps || (r < best+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					best = r
					leave = i
				}
			}
		}
		if leave == -1 {
			return Unbounded, 0, iter
		}
		t.pivot(leave, enter)
		// Update price row.
		piv := z[enter]
		if piv != 0 {
			for j := 0; j <= total; j++ {
				z[j] -= piv * t.rows[leave][j]
			}
			z[enter] = 0
		}
	}
	return IterLimit, 0, maxIters
}

// pivot makes column col basic in row r.
func (t *tableau) pivot(r, col int) {
	row := t.rows[r]
	p := row[col]
	for j := range row {
		row[j] /= p
	}
	for i := range t.rows {
		if i == r {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		for j := range t.rows[i] {
			t.rows[i][j] -= f * row[j]
		}
		t.rows[i][col] = 0
	}
	t.basis[r] = col
}
