package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForceILP enumerates integer grids to find the optimum of a small
// all-integer model with bounded variables; used as an oracle.
func bruteForceILP(vars []variable, cons []constraint, sense Sense) (bool, float64) {
	n := len(vars)
	cur := make([]float64, n)
	bestObj := math.Inf(1)
	if sense == Maximize {
		bestObj = math.Inf(-1)
	}
	found := false
	var walk func(i int)
	walk = func(i int) {
		if i == n {
			for _, c := range cons {
				sum := 0.0
				for _, t := range c.terms {
					sum += t.Coef * cur[t.Var]
				}
				switch c.op {
				case LE:
					if sum > c.rhs+1e-9 {
						return
					}
				case GE:
					if sum < c.rhs-1e-9 {
						return
					}
				case EQ:
					if math.Abs(sum-c.rhs) > 1e-9 {
						return
					}
				}
			}
			obj := 0.0
			for k, v := range vars {
				obj += v.obj * cur[k]
			}
			if !found ||
				(sense == Minimize && obj < bestObj) ||
				(sense == Maximize && obj > bestObj) {
				bestObj = obj
				found = true
			}
			return
		}
		for x := vars[i].lo; x <= vars[i].hi+1e-9; x++ {
			cur[i] = x
			walk(i + 1)
		}
	}
	walk(0)
	return found, bestObj
}

// feasible checks x against the model's constraints and bounds.
func feasible(m *Model, x []float64) bool {
	for i, v := range m.vars {
		if x[i] < v.lo-1e-6 || x[i] > v.hi+1e-6 {
			return false
		}
		if v.integer && math.Abs(x[i]-math.Round(x[i])) > 1e-6 {
			return false
		}
	}
	for _, c := range m.cons {
		sum := 0.0
		for _, t := range c.terms {
			sum += t.Coef * x[t.Var]
		}
		switch c.op {
		case LE:
			if sum > c.rhs+1e-6 {
				return false
			}
		case GE:
			if sum < c.rhs-1e-6 {
				return false
			}
		case EQ:
			if math.Abs(sum-c.rhs) > 1e-6 {
				return false
			}
		}
	}
	return true
}

func randomILP(r *rand.Rand) *Model {
	sense := Minimize
	if r.Intn(2) == 0 {
		sense = Maximize
	}
	m := NewModel("rand", sense)
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		lo := float64(r.Intn(3))
		hi := lo + float64(r.Intn(4))
		obj := float64(r.Intn(21) - 10)
		m.AddIntVar(lo, hi, obj, "")
	}
	nc := r.Intn(4)
	for c := 0; c < nc; c++ {
		var terms []Term
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				terms = append(terms, Term{VarID(i), float64(r.Intn(11) - 5)})
			}
		}
		if len(terms) == 0 {
			continue
		}
		op := []Op{LE, GE}[r.Intn(2)]
		rhs := float64(r.Intn(41) - 10)
		m.AddConstraint(terms, op, rhs, "")
	}
	return m
}

func TestPropertyILPMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomILP(r)
		s := m.Solve()
		ok, want := bruteForceILP(m.vars, m.cons, m.sense)
		switch s.Status {
		case Optimal:
			if !ok {
				t.Logf("seed %d: solver optimal %v but brute force infeasible", seed, s.Objective)
				return false
			}
			if !feasible(m, s.X) {
				t.Logf("seed %d: solver solution infeasible: %v", seed, s.X)
				return false
			}
			if math.Abs(s.Objective-want) > 1e-5 {
				t.Logf("seed %d: solver %v != brute force %v", seed, s.Objective, want)
				return false
			}
			return true
		case Infeasible:
			if ok {
				t.Logf("seed %d: solver infeasible but brute force found %v", seed, want)
			}
			return !ok
		default:
			t.Logf("seed %d: unexpected status %v", seed, s.Status)
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLPSolutionFeasible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sense := Minimize
		if r.Intn(2) == 0 {
			sense = Maximize
		}
		m := NewModel("randlp", sense)
		n := 1 + r.Intn(5)
		for i := 0; i < n; i++ {
			m.AddVar(0, 1+float64(r.Intn(20)), float64(r.Intn(21)-10), "")
		}
		for c := 0; c < 1+r.Intn(5); c++ {
			var terms []Term
			for i := 0; i < n; i++ {
				if r.Intn(2) == 0 {
					terms = append(terms, Term{VarID(i), float64(r.Intn(11) - 5)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			m.AddConstraint(terms, []Op{LE, GE, EQ}[r.Intn(3)], float64(r.Intn(21)-5), "")
		}
		s := m.Solve()
		if s.Status != Optimal {
			return true // infeasible/unbounded is legitimate for random input
		}
		return feasible(m, s.X)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLPObjectiveMatchesX(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewModel("obj", Minimize)
		n := 1 + r.Intn(4)
		for i := 0; i < n; i++ {
			m.AddVar(0, float64(1+r.Intn(10)), float64(r.Intn(9)-4), "")
		}
		for c := 0; c < r.Intn(3); c++ {
			var terms []Term
			for i := 0; i < n; i++ {
				terms = append(terms, Term{VarID(i), float64(r.Intn(7) - 3)})
			}
			m.AddConstraint(terms, GE, float64(r.Intn(10)-5), "")
		}
		s := m.Solve()
		if s.Status != Optimal {
			return true
		}
		obj := 0.0
		for i, v := range m.vars {
			obj += v.obj * s.X[i]
		}
		return math.Abs(obj-s.Objective) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
