// Package preempt implements the online phase of DSP (Section IV of the
// paper): dependency-aware task priority (Formulas 12 and 13) and the
// preemption procedure of Algorithm 1, including urgent-task handling,
// the δ-fraction preempting-task window, conditions C1/C2, and the
// normalized-priority filter (PP) that suppresses preemptions whose
// throughput gain would not cover the context-switch overhead. The
// package also provides the paper's baseline preemption policies —
// Amoeba, Natjam and SRPT — for the Figure 6/7 comparisons.
package preempt

import "dsp/internal/units"

// Params carries the preemption parameters of Table II.
type Params struct {
	// Omega1, Omega2, Omega3 weight remaining time, waiting time and
	// allowable waiting time in the leaf priority (Formula 13); they sum
	// to one. Table II: 0.5, 0.3, 0.2.
	Omega1, Omega2, Omega3 float64
	// Gamma is the level coefficient γ ∈ (0,1) of the recursive priority
	// (Formula 12). Table II: 0.5.
	Gamma float64
	// Delta is the fraction δ of each waiting queue considered as
	// preempting tasks. Table II: 0.35.
	Delta float64
	// Tau is the starvation threshold: a task waiting longer than τ
	// preempts regardless of condition C1. (Table II lists 0.05 s, which
	// would make every queued task "starving" within one epoch; that
	// value matches σ, the post-selection start latency, so we default τ
	// to a starvation-scale 30 minutes and expose it as a parameter.)
	Tau units.Time
	// Epsilon is the urgency threshold ε: a waiting task whose allowable
	// waiting time has shrunk to ε or below must run immediately.
	Epsilon units.Time
	// Rho is the normalized-priority factor ρ > 1: a preemption happens
	// only when the priority difference exceeds ρ times the average
	// neighboring-task priority gap.
	Rho float64
	// AdaptDelta enables the paper's dynamic δ adjustment: δ grows when
	// most considered tasks actually preempt (the offline schedule needs
	// many corrections) and shrinks when few do.
	AdaptDelta bool
	// FlatPriority is an ablation switch: it disables the recursive
	// dependency term of Formula 12 and ranks every task by the leaf
	// Formula 13 alone, isolating how much of DSP's gain comes from
	// dependency awareness.
	FlatPriority bool
	// MaxVictimPreemptions, when positive, protects any task from being
	// preempted more than this many times — a fairness guard for
	// long-running tasks (the paper lists fairness as future work).
	MaxVictimPreemptions int
}

// DefaultParams returns the Table II settings.
func DefaultParams() Params {
	return Params{
		Omega1:  0.5,
		Omega2:  0.3,
		Omega3:  0.2,
		Gamma:   0.5,
		Delta:   0.35,
		Tau:     30 * units.Minute,
		Epsilon: 10 * units.Second,
		Rho:     1.5,
	}
}
