package preempt

import (
	"dsp/internal/cluster"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// SpeedSource supplies node speeds to the priority calculator; sim.View
// implements it.
type SpeedSource interface {
	Speed(k cluster.NodeID) float64
	Cluster() *cluster.Cluster
}

// Calculator computes the dependency-aware task priority of Section IV-A
// with per-epoch memoization. For a task with dependents the priority is
// recursive over its children (Formula 12):
//
//	P_ij = Σ_{T_ik ∈ S_ij} (γ+1) · P_ik
//
// and for a task with no dependents it is the weighted combination of
// remaining time, waiting time and allowable waiting time (Formula 13):
//
//	P_ij = ω₁·(1/t^rem) + ω₂·t^w + ω₃·t^a
//
// so a task whose completion unlocks many descendants — particularly at
// higher DAG levels, amplified by (γ+1) per level — outranks tasks with
// few or no dependents.
type Calculator struct {
	P     Params
	now   units.Time
	view  SpeedSource
	cache map[*sim.TaskState]float64
}

// NewCalculator builds a calculator for one epoch evaluation at time now.
func NewCalculator(p Params, now units.Time, v SpeedSource) *Calculator {
	return &Calculator{P: p, now: now, view: v, cache: make(map[*sim.TaskState]float64)}
}

// speedFor returns the execution speed used for a task's remaining-time
// terms: its assigned node's speed, or the cluster mean for unassigned
// tasks.
func (c *Calculator) speedFor(t *sim.TaskState) float64 {
	if t.Node >= 0 {
		return c.view.Speed(t.Node)
	}
	return c.view.Cluster().MeanSpeed()
}

// Priority returns P at the calculator's evaluation time.
func (c *Calculator) Priority(t *sim.TaskState) float64 {
	if v, ok := c.cache[t]; ok {
		return v
	}
	// DAGs are acyclic, so recursion terminates; diamond sharing is
	// handled by the memo.
	var p float64
	liveChildren := 0
	if !c.P.FlatPriority {
		for _, ch := range t.Job.Dag.Children(t.Task.ID) {
			cs := t.Job.Tasks[ch]
			if cs.Phase == sim.Done {
				continue
			}
			liveChildren++
			p += (c.P.Gamma + 1) * c.Priority(cs)
		}
	}
	if liveChildren == 0 {
		p = c.leaf(t)
	}
	c.cache[t] = p
	return p
}

// leaf evaluates Formula 13.
func (c *Calculator) leaf(t *sim.TaskState) float64 {
	return leafPriority(c.P, c.now, c.speedFor(t), t)
}

// leafPriority is Formula 13 — the priority of a task with no live
// dependents: ω₁·(1/t^rem) + ω₂·t^w + ω₃·t^a. It is shared by the
// reference Calculator and the epoch-persistent Memo so the two always
// agree bit-for-bit.
func leafPriority(p Params, now units.Time, speed float64, t *sim.TaskState) float64 {
	rem := t.LiveRemainingTime(now, speed).Seconds()
	if rem <= 0 {
		rem = 1e-3 // a nearly-finished task has maximal remaining-term urgency
	}
	wait := t.WaitingTime(now).Seconds()
	var allow float64
	if t.Deadline != units.Forever {
		allow = t.AllowableWait(now, speed).Seconds()
		if allow < 0 {
			allow = 0
		}
	}
	return p.Omega1*(1/rem) + p.Omega2*wait + p.Omega3*allow
}

// AvgNeighborGap returns P̄: the mean priority difference between
// neighboring tasks when the given priorities are sorted ascending. The
// neighbor gaps telescope, so P̄ = (max−min)/(n−1). The PP filter
// normalizes priority differences by this gap.
func AvgNeighborGap(priorities []float64) float64 {
	if len(priorities) < 2 {
		return 0
	}
	min, max := priorities[0], priorities[0]
	for _, p := range priorities[1:] {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	return (max - min) / float64(len(priorities)-1)
}
