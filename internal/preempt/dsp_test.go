package preempt

import (
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func testCluster(n, slots int) *cluster.Cluster {
	c := &cluster.Cluster{Theta1: 0.5, Theta2: 0.5}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, &cluster.Node{
			ID: cluster.NodeID(i), Name: "t", SCPU: 1000, SMem: 1000, Slots: slots,
			Capacity: dag.Resources{CPU: float64(slots), Mem: 16, DiskMB: 1e6, Bandwidth: 1e3},
		})
	}
	return c
}

// rrScheduler assigns pending tasks round-robin at start = now.
type rrScheduler struct{}

func (rrScheduler) Name() string { return "rr" }
func (rrScheduler) Schedule(now units.Time, pending []*sim.JobState, v *sim.View) []sim.Assignment {
	var out []sim.Assignment
	i := 0
	n := v.Cluster().Len()
	for _, j := range pending {
		for _, t := range j.PendingTasks() {
			out = append(out, sim.Assignment{Task: t, Node: cluster.NodeID(i % n), Start: now})
			i++
		}
	}
	return out
}

func sizedJob(id dag.JobID, sizes ...float64) *dag.Job {
	j := dag.NewJob(id, len(sizes))
	for i, s := range sizes {
		j.Task(dag.TaskID(i)).Size = s
	}
	return j
}

func workload(jobs ...*dag.Job) *trace.Workload {
	w := &trace.Workload{ArrivalRate: 3}
	for _, j := range jobs {
		w.Jobs = append(w.Jobs, &trace.Job{Arrival: 0, DAG: j})
	}
	return w
}

func runWith(t *testing.T, p sim.Preemptor, cp cluster.CheckpointPolicy, jobs ...*dag.Job) *sim.Result {
	t.Helper()
	res, err := sim.Run(sim.Config{
		Cluster:    testCluster(1, 1),
		Scheduler:  rrScheduler{},
		Preemptor:  p,
		Checkpoint: cp,
		Epoch:      10 * units.Second,
	}, workload(jobs...))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDSPPreemptsForDependencyRichTask(t *testing.T) {
	big := sizedJob(0, 20000) // 20 s leaf
	star := sizedJob(1, 1000, 1000, 1000, 1000, 1000)
	for i := 1; i <= 4; i++ {
		star.MustDep(0, dag.TaskID(i))
	}
	res := runWith(t, NewDSP(), cluster.DefaultCheckpoint(), big, star)
	if res.Preemptions == 0 {
		t.Error("DSP should preempt the dependency-poor task for the star root")
	}
	if res.Disorders != 0 {
		t.Errorf("DSP caused %d disorders, want 0", res.Disorders)
	}
	if res.TasksCompleted != 6 {
		t.Errorf("completed %d tasks, want 6", res.TasksCompleted)
	}
}

func TestPPFilterSuppressesMarginalPreemption(t *testing.T) {
	// Two leaf tasks only: the priority difference always equals the
	// average neighbor gap, so the normalized difference is 1 < ρ and PP
	// must suppress the preemption; DSPW/oPP performs it.
	big := sizedJob(0, 20000)
	small := sizedJob(1, 1000)

	withPP := runWith(t, NewDSP(), cluster.DefaultCheckpoint(), big, small)
	if withPP.Preemptions != 0 {
		t.Errorf("DSP (PP) preempted %d times, want 0 (marginal gain)", withPP.Preemptions)
	}
	withoutPP := runWith(t, NewDSPWithoutPP(), cluster.DefaultCheckpoint(), big, small)
	if withoutPP.Preemptions == 0 {
		t.Error("DSPW/oPP should preempt on raw priority difference")
	}
}

func TestUrgentTaskBypassesPP(t *testing.T) {
	// Same two-task scenario, but the small job has a deadline that
	// becomes urgent at the first epoch: urgency must override PP.
	big := sizedJob(0, 40000)
	small := sizedJob(1, 1000)
	small.Deadline = 15 // allowable wait at t=10s is 15-10-1 = 4 s ≤ ε
	res := runWith(t, NewDSP(), cluster.DefaultCheckpoint(), big, small)
	if res.Preemptions == 0 {
		t.Fatal("urgent task did not preempt")
	}
	if res.JobsMetDeadline < 1 {
		t.Error("urgent job should have met its deadline after preempting")
	}
}

func TestUrgentSkipsUnreadyTasks(t *testing.T) {
	// The urgent waiting task depends on the running task: C2 forbids the
	// preemption even under urgency, so no disorder ever occurs.
	chain := sizedJob(0, 20000, 1000)
	chain.MustDep(0, 1)
	chain.Deadline = 12 // child is urgent almost immediately
	res := runWith(t, NewDSP(), cluster.DefaultCheckpoint(), chain)
	if res.Disorders != 0 {
		t.Errorf("disorders = %d, want 0", res.Disorders)
	}
	if res.Preemptions != 0 {
		t.Errorf("preemptions = %d, want 0 (only runnable tasks preempt)", res.Preemptions)
	}
}

func TestDeadlineProtectedVictimNotPreempted(t *testing.T) {
	// The running task's own deadline is tight: it is not preemptable, so
	// even a high-priority waiting task must not evict it.
	runningJob := sizedJob(0, 20000)
	runningJob.Deadline = 21 // allowable wait ≈ 21-20 = 1 s < epoch
	star := sizedJob(1, 1000, 1000, 1000, 1000, 1000)
	for i := 1; i <= 4; i++ {
		star.MustDep(0, dag.TaskID(i))
	}
	res := runWith(t, NewDSP(), cluster.DefaultCheckpoint(), runningJob, star)
	if res.Preemptions != 0 {
		t.Errorf("preemptions = %d, want 0 (victim deadline-protected)", res.Preemptions)
	}
	if res.JobsMetDeadline < 1 {
		t.Error("protected job should meet its deadline")
	}
}

func TestDSPOnGeneratedWorkloadNoDisorders(t *testing.T) {
	spec := trace.DefaultSpec(6, 17)
	spec.TaskScale = 0.05
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Cluster:    cluster.RealCluster(5),
		Scheduler:  rrScheduler{},
		Preemptor:  NewDSP(),
		Checkpoint: cluster.DefaultCheckpoint(),
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disorders != 0 {
		t.Errorf("DSP caused %d disorders on generated workload", res.Disorders)
	}
	if res.JobsCompleted != 6 {
		t.Errorf("completed %d jobs, want 6", res.JobsCompleted)
	}
}

func TestAdaptDeltaStaysBounded(t *testing.T) {
	spec := trace.DefaultSpec(6, 23)
	spec.TaskScale = 0.05
	w, err := trace.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDSP()
	d.P.AdaptDelta = true
	_, err = sim.Run(sim.Config{
		Cluster:    cluster.RealCluster(4),
		Scheduler:  rrScheduler{},
		Preemptor:  d,
		Checkpoint: cluster.DefaultCheckpoint(),
	}, w)
	if err != nil {
		t.Fatal(err)
	}
	if d.P.Delta < 0.05 || d.P.Delta > 1 {
		t.Errorf("adaptive delta out of bounds: %v", d.P.Delta)
	}
}

func TestNames(t *testing.T) {
	if NewDSP().Name() != "DSP" {
		t.Errorf("Name = %q", NewDSP().Name())
	}
	if NewDSPWithoutPP().Name() != "DSPW/oPP" {
		t.Errorf("Name = %q", NewDSPWithoutPP().Name())
	}
	anon := &DSP{P: DefaultParams(), UsePP: true}
	if anon.Name() != "DSP" {
		t.Errorf("anonymous Name = %q", anon.Name())
	}
	anon.UsePP = false
	if anon.Name() != "DSPW/oPP" {
		t.Errorf("anonymous Name = %q", anon.Name())
	}
}

func TestMaxVictimPreemptionsGuard(t *testing.T) {
	// A long deadline-free task shares one slot with dependency-rich star
	// jobs whose own deadlines are tight enough that their tasks are
	// never preemptable — so the long task is the only possible victim.
	// With the fairness guard at 1 it is suspended at most once; without
	// the guard it is victimized repeatedly.
	mkJobs := func() []*dag.Job {
		big := sizedJob(0, 60000)
		jobs := []*dag.Job{big}
		for i := 1; i <= 4; i++ {
			s := sizedJob(dag.JobID(i), 2000, 2000, 2000, 2000, 2000)
			for c := 1; c <= 4; c++ {
				s.MustDep(0, dag.TaskID(c))
			}
			s.Deadline = 13 // root task deadline 11 s: unpreemptable while running
			jobs = append(jobs, s)
		}
		return jobs
	}
	run := func(max int) *sim.Result {
		d := NewDSP()
		d.P.MaxVictimPreemptions = max
		return runWith(t, d, cluster.DefaultCheckpoint(), mkJobs()...)
	}
	unguarded := run(0)
	if unguarded.Preemptions < 2 {
		t.Fatalf("scenario produced only %d preemptions; guard not exercised", unguarded.Preemptions)
	}
	guarded := run(1)
	if guarded.Preemptions > 1 {
		t.Errorf("guard=1 allowed %d preemptions of the single victim", guarded.Preemptions)
	}
}
