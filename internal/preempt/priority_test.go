package preempt

import (
	"math"
	"testing"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// fakeSpeeds is a SpeedSource with every node at 1000 MIPS.
type fakeSpeeds struct{ c *cluster.Cluster }

func newFakeSpeeds() fakeSpeeds {
	c := &cluster.Cluster{Theta1: 0.5, Theta2: 0.5}
	c.Nodes = append(c.Nodes, &cluster.Node{ID: 0, SCPU: 1000, SMem: 1000, Slots: 4})
	return fakeSpeeds{c: c}
}
func (f fakeSpeeds) Speed(cluster.NodeID) float64 { return 1000 }
func (f fakeSpeeds) Cluster() *cluster.Cluster    { return f.c }

// buildStates wraps a dag.Job into sim task states, all queued at t=0 on
// node 0 with no deadline.
func buildStates(j *dag.Job) *sim.JobState {
	js := &sim.JobState{Dag: j, DoneAt: -1}
	for _, task := range j.Tasks {
		js.Tasks = append(js.Tasks, &sim.TaskState{
			Task:     task,
			Job:      js,
			Phase:    sim.Queued,
			Node:     0,
			Deadline: units.Forever,
			DoneAt:   -1,
		})
	}
	return js
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLeafPriorityFormula13(t *testing.T) {
	j := dag.NewJob(0, 1)
	j.Task(0).Size = 2000 // 2 s remaining at 1000 MIPS
	js := buildStates(j)
	ts := js.Tasks[0]
	ts.QueuedAt = 0
	ts.Deadline = 10 * units.Second

	p := DefaultParams()
	calc := NewCalculator(p, 4*units.Second, newFakeSpeeds())
	got := calc.Priority(ts)
	// remaining 2 s, waiting 4 s, allowable = 10-4-2 = 4 s.
	want := 0.5*(1.0/2.0) + 0.3*4 + 0.2*4
	if !approx(got, want, 1e-9) {
		t.Errorf("leaf priority = %v, want %v", got, want)
	}
}

func TestRecursivePriorityFormula12(t *testing.T) {
	// Chain 0 -> 1 -> 2, all leaves-by-structure except 0,1. With all
	// remaining 1 s, no wait, no deadline: leaf P = 0.5. P1 = 1.5*0.5 =
	// 0.75; P0 = 1.5*0.75 = 1.125.
	j := dag.NewJob(0, 3)
	for i := 0; i < 3; i++ {
		j.Task(dag.TaskID(i)).Size = 1000
	}
	j.MustDep(0, 1)
	j.MustDep(1, 2)
	js := buildStates(j)
	calc := NewCalculator(DefaultParams(), 0, newFakeSpeeds())
	p0 := calc.Priority(js.Tasks[0])
	p1 := calc.Priority(js.Tasks[1])
	p2 := calc.Priority(js.Tasks[2])
	if !approx(p2, 0.5, 1e-9) || !approx(p1, 0.75, 1e-9) || !approx(p0, 1.125, 1e-9) {
		t.Errorf("priorities = %v %v %v, want 1.125 0.75 0.5", p0, p1, p2)
	}
}

func TestPriorityMoreDependentsWins(t *testing.T) {
	// Star with 4 children beats star with 1 child.
	wide := dag.NewJob(0, 5)
	for i := 0; i < 5; i++ {
		wide.Task(dag.TaskID(i)).Size = 1000
	}
	for i := 1; i <= 4; i++ {
		wide.MustDep(0, dag.TaskID(i))
	}
	narrow := dag.NewJob(1, 2)
	narrow.Task(0).Size = 1000
	narrow.Task(1).Size = 1000
	narrow.MustDep(0, 1)

	calc := NewCalculator(DefaultParams(), 0, newFakeSpeeds())
	pw := calc.Priority(buildStates(wide).Tasks[0])
	pn := calc.Priority(buildStates(narrow).Tasks[0])
	if pw <= pn {
		t.Errorf("wide root %v should outrank narrow root %v", pw, pn)
	}
}

func TestPriorityDeeperLevelsWin(t *testing.T) {
	// Figure 3: T11-style (2 children, 4 grandchildren) beats T6-style
	// (2 children, 2 grandchildren), which beats T1-style (4 children).
	mk := func(edges [][2]int, n int) float64 {
		j := dag.NewJob(0, n)
		for i := 0; i < n; i++ {
			j.Task(dag.TaskID(i)).Size = 1000
		}
		for _, e := range edges {
			j.MustDep(dag.TaskID(e[0]), dag.TaskID(e[1]))
		}
		calc := NewCalculator(DefaultParams(), 0, newFakeSpeeds())
		return calc.Priority(buildStates(j).Tasks[0])
	}
	t1 := mk([][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, 5)
	t6 := mk([][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}}, 5)
	t11 := mk([][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}}, 7)
	if !(t11 > t6) {
		t.Errorf("T11-style %v should outrank T6-style %v", t11, t6)
	}
	if !(t11 > t1) {
		t.Errorf("T11-style %v should outrank T1-style %v", t11, t1)
	}
}

func TestDoneChildrenExcluded(t *testing.T) {
	j := dag.NewJob(0, 3)
	for i := 0; i < 3; i++ {
		j.Task(dag.TaskID(i)).Size = 1000
	}
	j.MustDep(0, 1)
	j.MustDep(0, 2)
	js := buildStates(j)
	calcBefore := NewCalculator(DefaultParams(), 0, newFakeSpeeds())
	before := calcBefore.Priority(js.Tasks[0])
	js.Tasks[1].Phase = sim.Done
	calcAfter := NewCalculator(DefaultParams(), 0, newFakeSpeeds())
	after := calcAfter.Priority(js.Tasks[0])
	if after >= before {
		t.Errorf("priority should drop when a child completes: before=%v after=%v", before, after)
	}
}

func TestNearFinishedLeafClamp(t *testing.T) {
	j := dag.NewJob(0, 1)
	j.Task(0).Size = 0 // zero remaining
	js := buildStates(j)
	calc := NewCalculator(DefaultParams(), 0, newFakeSpeeds())
	got := calc.Priority(js.Tasks[0])
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Errorf("zero-remaining leaf priority = %v", got)
	}
	if got <= 0 {
		t.Errorf("zero-remaining leaf should have high urgency, got %v", got)
	}
}

func TestMissedDeadlineAllowableClamp(t *testing.T) {
	j := dag.NewJob(0, 1)
	j.Task(0).Size = 1000
	js := buildStates(j)
	ts := js.Tasks[0]
	ts.Deadline = units.Second // already unreachable at now=10s
	calc := NewCalculator(DefaultParams(), 10*units.Second, newFakeSpeeds())
	got := calc.Priority(ts)
	// allowable clamps to 0: P = 0.5*(1/1) + 0.3*10 + 0 = 3.5
	if !approx(got, 3.5, 1e-9) {
		t.Errorf("priority = %v, want 3.5", got)
	}
}

func TestAvgNeighborGap(t *testing.T) {
	if got := AvgNeighborGap([]float64{1, 5, 3}); !approx(got, 2, 1e-12) {
		t.Errorf("AvgNeighborGap = %v, want 2 ((5-1)/2)", got)
	}
	if got := AvgNeighborGap([]float64{7}); got != 0 {
		t.Errorf("single element gap = %v, want 0", got)
	}
	if got := AvgNeighborGap(nil); got != 0 {
		t.Errorf("empty gap = %v, want 0", got)
	}
	if got := AvgNeighborGap([]float64{4, 4, 4}); got != 0 {
		t.Errorf("equal priorities gap = %v, want 0", got)
	}
}

func TestDefaultParamsTableII(t *testing.T) {
	p := DefaultParams()
	if p.Omega1 != 0.5 || p.Omega2 != 0.3 || p.Omega3 != 0.2 {
		t.Errorf("omegas = %v %v %v", p.Omega1, p.Omega2, p.Omega3)
	}
	if !approx(p.Omega1+p.Omega2+p.Omega3, 1, 1e-12) {
		t.Error("omegas must sum to 1")
	}
	if p.Gamma != 0.5 || p.Delta != 0.35 || p.Rho <= 1 {
		t.Errorf("gamma=%v delta=%v rho=%v", p.Gamma, p.Delta, p.Rho)
	}
}
