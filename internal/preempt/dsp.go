package preempt

import (
	"math"
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/prof"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// DSP is the dependency-aware preemption policy of Algorithm 1. Every
// epoch, for every node queue:
//
//  1. Urgent tasks (allowable wait ≤ ε, or waiting ≥ τ) preempt the
//     lowest-priority preemptable running task they do not depend on,
//     unconditionally.
//  2. The first δ·|A| waiting tasks (preempting tasks) each scan the
//     preemptable running tasks in ascending priority and preempt the
//     first victim satisfying C1 (higher priority than the victim) and
//     C2 (no dependency on the victim). With the normalized-priority
//     filter (PP) enabled, the priority difference must additionally
//     exceed ρ·P̄, the scaled average neighboring-task gap, so that the
//     throughput gain covers the context-switch cost.
//
// A running task is preemptable only if its allowable waiting time
// exceeds the epoch, guaranteeing preemption never pushes a running task
// past its own deadline.
type DSP struct {
	P Params
	// UsePP enables the normalized-priority filter; DSPW/oPP (the
	// ablation the paper evaluates as "DSPW/oPP") disables it.
	UsePP bool

	name string
	// memo is the epoch-persistent priority evaluator (lazily created, so
	// zero-value DSP literals in tests keep working).
	memo *Memo
	// Reusable per-epoch scratch, so the epoch loop stops allocating once
	// the buffers reach the cluster's working-set size.
	preemptable []cand
	priBuf      []float64
	victimUsed  map[*sim.TaskState]bool
	starterUsed map[*sim.TaskState]bool
	// tm is the attached phase profiler (nil when the run is not
	// profiled); the engine wires it through SetProfiler.
	tm *prof.Timer
}

// SetProfiler implements prof.Instrumentable: the engine attaches its
// phase timer here so the epoch's verdict scan and the memo's
// evaluation/rebuild passes charge their own phases instead of the
// generic epoch-policy phase.
func (d *DSP) SetProfiler(tm *prof.Timer) { d.tm = tm }

// cand pairs a preemptable running task with its priority at epoch
// evaluation time.
type cand struct {
	t  *sim.TaskState
	pr float64
}

// NewDSP returns the full DSP policy with Table II parameters.
func NewDSP() *DSP {
	return &DSP{P: DefaultParams(), UsePP: true, name: "DSP"}
}

// NewDSPWithoutPP returns the DSPW/oPP ablation: identical except
// preemption uses the absolute priority comparison only.
func NewDSPWithoutPP() *DSP {
	return &DSP{P: DefaultParams(), UsePP: false, name: "DSPW/oPP"}
}

// Name implements sim.Preemptor.
func (d *DSP) Name() string {
	if d.name != "" {
		return d.name
	}
	if d.UsePP {
		return "DSP"
	}
	return "DSPW/oPP"
}

// Epoch implements sim.Preemptor.
func (d *DSP) Epoch(now units.Time, v *sim.View) []sim.Action {
	if d.memo == nil {
		d.memo = NewMemo()
	}
	if d.victimUsed == nil {
		d.victimUsed = make(map[*sim.TaskState]bool)
		d.starterUsed = make(map[*sim.TaskState]bool)
	}
	d.memo.tm = d.tm
	d.memo.BeginEpoch(d.P, now, v)
	var out []sim.Action
	considered, fired := 0, 0
	// One verdict-scan phase per epoch (not per node): the per-node scan
	// can be microseconds, and phase boundaries there would cost more
	// than they measure. Memo work nested inside charges its own phases.
	d.tm.Enter(prof.PhaseVerdictScan)
	for k := 0; k < v.Cluster().Len(); k++ {
		node := cluster.NodeID(k)
		c, f := d.epochNode(node, now, v, d.memo, &out)
		considered += c
		fired += f
	}
	d.tm.Exit()
	if d.P.AdaptDelta && considered > 0 {
		rate := float64(fired) / float64(considered)
		switch {
		case rate > 0.75:
			d.P.Delta = math.Min(1, d.P.Delta*1.2)
		case rate < 0.25:
			d.P.Delta = math.Max(0.05, d.P.Delta*0.8)
		}
	}
	return out
}

// epochNode runs Algorithm 1 for one node and appends actions. It
// returns how many preempting tasks were considered and how many
// preempted, feeding the dynamic δ adjustment.
func (d *DSP) epochNode(node cluster.NodeID, now units.Time, v *sim.View, calc *Memo, out *[]sim.Action) (considered, fired int) {
	speed := v.Speed(node)
	epoch := v.Epoch()

	waiting := v.Queue(node) // ascending planned-start order
	running := v.Running(node)
	if len(waiting) == 0 || len(running) == 0 {
		return 0, 0
	}

	// Preemptable running tasks: those whose own deadline tolerates
	// sitting out at least one epoch.
	preemptable := d.preemptable[:0]
	for _, r := range running {
		if d.P.MaxVictimPreemptions > 0 && r.Preemptions >= d.P.MaxVictimPreemptions {
			continue // fairness guard: this task has suffered enough
		}
		if r.Deadline == units.Forever || r.AllowableWait(now, speed) > epoch {
			preemptable = append(preemptable, cand{t: r, pr: calc.Priority(r)})
		}
	}
	if len(preemptable) == 0 {
		return 0, 0
	}
	sort.Slice(preemptable, func(a, b int) bool {
		if preemptable[a].pr != preemptable[b].pr {
			return preemptable[a].pr < preemptable[b].pr
		}
		return lessKey(preemptable[a].t, preemptable[b].t)
	})

	// P̄ over all tasks on this node (waiting ∪ running).
	all := d.priBuf[:0]
	for _, t := range waiting {
		all = append(all, calc.Priority(t))
	}
	for _, t := range running {
		all = append(all, calc.Priority(t))
	}
	avgGap := AvgNeighborGap(all)

	clear(d.victimUsed)
	clear(d.starterUsed)
	victimUsed := d.victimUsed
	starterUsed := d.starterUsed
	obs := v.Observer()

	dependsOn := func(a, b *sim.TaskState) bool {
		return a.Job == b.Job && a.Job.Dag.DependsOn(a.Task.ID, b.Task.ID)
	}

	take := func(starter *sim.TaskState, requireC1, requirePP, urgent bool) bool {
		sp := calc.Priority(starter)
		for _, vc := range preemptable {
			if victimUsed[vc.t] {
				continue
			}
			if dependsOn(starter, vc.t) {
				continue // condition C2
			}
			var threshold float64
			if requireC1 {
				diff := sp - vc.pr
				if diff <= 0 {
					return false // victims only get higher-priority from here
				}
				if requirePP && d.UsePP {
					threshold = d.P.Rho * avgGap
					if avgGap <= 0 || diff/avgGap <= d.P.Rho {
						// The gain does not cover the context-switch
						// cost: the PP filter suppresses the preemption.
						if obs != nil {
							obs.PreemptionConsidered(now, sim.PreemptionDecision{
								Node:              node,
								Candidate:         starter,
								Victim:            vc.t,
								CandidatePriority: sp,
								VictimPriority:    vc.pr,
								Gain:              diff,
								Overhead:          threshold,
								Verdict:           sim.VerdictSuppressedByPP,
							})
						}
						return false
					}
				}
			}
			victimUsed[vc.t] = true
			starterUsed[starter] = true
			*out = append(*out, sim.Action{
				Node: node, Victim: vc.t, Starter: starter,
				Urgent:          urgent,
				StarterPriority: sp,
				VictimPriority:  vc.pr,
				PPThreshold:     threshold,
			})
			return true
		}
		return false
	}

	// Pass 1 — urgent tasks anywhere in the queue: t^a ≤ ε or t^w ≥ τ.
	// Deadline urgency only applies while the deadline is still
	// rescuable: once a task is hopelessly late, preempting for it cannot
	// recover the deadline and would only thrash.
	for _, w := range waiting {
		if starterUsed[w] {
			continue
		}
		urgent := w.WaitingTime(now) >= d.P.Tau
		if !urgent && w.Deadline != units.Forever {
			aw := w.AllowableWait(now, speed)
			urgent = aw <= d.P.Epsilon && aw >= -epoch
		}
		if !urgent {
			continue
		}
		if !w.DepsMet() {
			continue // cannot run yet regardless of urgency
		}
		take(w, false, false, true)
	}

	// Pass 2 — the δ-window of preempting tasks at the head of the queue.
	window := int(math.Ceil(d.P.Delta * float64(len(waiting))))
	if window < 1 {
		window = 1
	}
	for i := 0; i < window && i < len(waiting); i++ {
		w := waiting[i]
		if starterUsed[w] {
			continue
		}
		if !w.DepsMet() {
			continue // starting it would violate its own dependencies
		}
		considered++
		if take(w, true, true, false) {
			fired++
		}
	}
	// Hand the (possibly grown) scratch buffers back for the next node.
	d.preemptable = preemptable[:0]
	d.priBuf = all[:0]
	return considered, fired
}

func lessKey(a, b *sim.TaskState) bool {
	if a.Task.Job != b.Task.Job {
		return a.Task.Job < b.Task.Job
	}
	return a.Task.ID < b.Task.ID
}
