package preempt

import (
	"math/rand"
	"testing"

	"dsp/internal/dag"
	"dsp/internal/units"
)

// BenchmarkPriorityMemo compares the epoch-persistent Memo against the
// per-epoch recursive Calculator on the same demand pattern: a
// 200-task random DAG whose every task's priority is demanded once per
// epoch (the preemptor's epochNode access pattern). The memo amortizes
// the topological order and live-edge derivation across epochs; the
// calculator rebuilds its map-backed cache from scratch each time.
func BenchmarkPriorityMemo(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	js := randomJob(rng, dag.JobID(0), 200)
	p := DefaultParams()
	speeds := newFakeSpeeds()

	b.Run("memo", func(b *testing.B) {
		m := NewMemo()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.BeginEpoch(p, units.Time(i), speeds)
			for _, ts := range js.Tasks {
				_ = m.Priority(ts)
			}
		}
	})
	b.Run("recursive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := NewCalculator(p, units.Time(i), speeds)
			for _, ts := range js.Tasks {
				_ = c.Priority(ts)
			}
		}
	})
}
