package preempt

import (
	"math/rand"
	"testing"

	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// randomJob builds a job with n tasks and random forward edges (parent →
// higher-ID child), random sizes, and randomized task states.
func randomJob(rng *rand.Rand, id dag.JobID, n int) *sim.JobState {
	j := dag.NewJob(id, n)
	for i := 0; i < n; i++ {
		j.Task(dag.TaskID(i)).Size = 100 + rng.Float64()*5000
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() < 0.25 {
				j.MustDep(dag.TaskID(a), dag.TaskID(b))
			}
		}
	}
	js := &sim.JobState{Dag: j, DoneAt: -1}
	for _, task := range j.Tasks {
		ts := &sim.TaskState{
			Task:     task,
			Job:      js,
			Phase:    sim.Queued,
			Node:     -1,
			Deadline: units.Forever,
			DoneAt:   -1,
		}
		if rng.Float64() < 0.5 {
			ts.Node = 0
		}
		if rng.Float64() < 0.3 {
			ts.Deadline = units.FromSeconds(5 + rng.Float64()*100)
		}
		ts.QueuedAt = units.FromSeconds(rng.Float64() * 10)
		js.Tasks = append(js.Tasks, ts)
	}
	return js
}

// mutate flips some tasks' phases the way an epoch of simulation would:
// completions, suspensions, requeues.
func mutate(rng *rand.Rand, js *sim.JobState, now units.Time) {
	for _, ts := range js.Tasks {
		if ts.Phase == sim.Done {
			continue
		}
		switch r := rng.Float64(); {
		case r < 0.15:
			ts.Phase = sim.Done
			ts.DoneAt = now
		case r < 0.3:
			ts.Phase = sim.Running
		case r < 0.45:
			ts.Phase = sim.Suspended
			ts.QueuedAt = now
		}
	}
}

// TestMemoMatchesCalculator is the memo-correctness property test: across
// random DAGs, random task states, and multiple epochs with state
// mutations in between, Memo must return bit-for-bit the same priorities
// as a fresh recursive Calculator built at the same evaluation time.
func TestMemoMatchesCalculator(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		js := randomJob(rng, dag.JobID(seed), n)

		p := DefaultParams()
		if seed%5 == 4 {
			p.FlatPriority = true
		}
		if seed%3 == 2 {
			p.Gamma = rng.Float64()
		}
		memo := NewMemo()
		speeds := newFakeSpeeds()

		for epoch := 0; epoch < 6; epoch++ {
			now := units.FromSeconds(float64(epoch) * 10)
			memo.BeginEpoch(p, now, speeds)
			calc := NewCalculator(p, now, speeds)
			// Demand in random order: memoization must not depend on
			// evaluation order.
			perm := rng.Perm(n)
			for _, i := range perm {
				ts := js.Tasks[i]
				got := memo.Priority(ts)
				want := calc.Priority(ts)
				if got != want {
					t.Fatalf("seed %d epoch %d task %d: memo %v != calculator %v",
						seed, epoch, i, got, want)
				}
			}
			mutate(rng, js, now)
		}
	}
}

// TestMemoSeesCompletionsWithinEpoch locks in the invalidation rule: a
// task completing between epochs must drop out of its parents' priority
// sums at the next BeginEpoch.
func TestMemoSeesCompletionsWithinEpoch(t *testing.T) {
	j := dag.NewJob(0, 3)
	for i := 0; i < 3; i++ {
		j.Task(dag.TaskID(i)).Size = 1000
	}
	j.MustDep(0, 1)
	j.MustDep(0, 2)
	js := buildStates(j)

	p := DefaultParams()
	speeds := newFakeSpeeds()
	memo := NewMemo()

	memo.BeginEpoch(p, 0, speeds)
	before := memo.Priority(js.Tasks[0])

	js.Tasks[1].Phase = sim.Done
	memo.BeginEpoch(p, 0, speeds)
	after := memo.Priority(js.Tasks[0])
	want := NewCalculator(p, 0, speeds).Priority(js.Tasks[0])
	if after != want {
		t.Fatalf("after completion: memo %v != calculator %v", after, want)
	}
	if after >= before {
		t.Fatalf("priority should drop when a child completes: before=%v after=%v", before, after)
	}
}
