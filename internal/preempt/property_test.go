package preempt

import (
	"testing"
	"testing/quick"

	"dsp/internal/cluster"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

// validator checks Algorithm 1's invariants on every preemption the
// engine applies.
type validator struct {
	sim.NopObserver
	t        *testing.T
	epoch    units.Time
	bad      int
	preempts int
}

func (v *validator) TaskPreempted(now units.Time, victim, starter *sim.TaskState, node cluster.NodeID) {
	v.preempts++
	if starter == nil {
		v.bad++
		v.t.Errorf("preemption without starter at %v", now)
		return
	}
	// C2: the starter must not depend on the victim.
	if starter.Job == victim.Job &&
		starter.Job.Dag.DependsOn(starter.Task.ID, victim.Task.ID) {
		v.bad++
		v.t.Errorf("C2 violated at %v: %v depends on victim %v", now, starter.Key(), victim.Key())
	}
	// Starters must be runnable: all precedents finished.
	if !starter.DepsMet() {
		v.bad++
		v.t.Errorf("unrunnable starter %v at %v", starter.Key(), now)
	}
}

func TestPropertyDSPPreemptionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		spec := trace.DefaultSpec(8, seed)
		spec.TaskScale = 0.03
		spec.MeanTaskSizeMI *= 20 // contended small cluster
		w, err := trace.Generate(spec)
		if err != nil {
			return false
		}
		v := &validator{t: t, epoch: 10 * units.Second}
		res, err := sim.Run(sim.Config{
			Cluster:    cluster.EC2(3),
			Scheduler:  rrScheduler{},
			Preemptor:  NewDSP(),
			Checkpoint: cluster.DefaultCheckpoint(),
			Observer:   v,
		}, w)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.Disorders != 0 {
			t.Logf("seed %d: %d disorders", seed, res.Disorders)
			return false
		}
		if res.JobsCompleted != 8 {
			t.Logf("seed %d: %d jobs completed", seed, res.JobsCompleted)
			return false
		}
		return v.bad == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAllPreemptorsTerminate(t *testing.T) {
	// Every preemption policy must drive every workload to completion —
	// no live-locks — under contention, including the no-checkpoint SRPT
	// path exercised via the experiments registry equivalents.
	policies := []struct {
		pre sim.Preemptor
		cp  cluster.CheckpointPolicy
	}{
		{NewDSP(), cluster.DefaultCheckpoint()},
		{NewDSPWithoutPP(), cluster.DefaultCheckpoint()},
	}
	f := func(seed int64) bool {
		for _, pol := range policies {
			spec := trace.DefaultSpec(6, seed)
			spec.TaskScale = 0.03
			spec.MeanTaskSizeMI *= 25
			w, err := trace.Generate(spec)
			if err != nil {
				return false
			}
			res, err := sim.Run(sim.Config{
				Cluster:    cluster.EC2(3),
				Scheduler:  rrScheduler{},
				Preemptor:  pol.pre,
				Checkpoint: pol.cp,
				MaxEvents:  5_000_000,
			}, w)
			if err != nil || res.JobsCompleted != 6 {
				t.Logf("seed %d policy %s: err=%v", seed, pol.pre.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
