package preempt

import (
	"dsp/internal/prof"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// Memo is the epoch-persistent dependency-priority evaluator the DSP
// preemptor uses in place of a fresh Calculator every epoch. It computes
// exactly the same P_ij values as the recursive Calculator (the package
// property tests assert bit-for-bit equality) but restructures the work
// so the per-epoch cost is a flat, allocation-free array pass:
//
//   - Per job it caches a reverse-topological task order (children before
//     parents) keyed on the DAG topology (len(Tasks) — dynamic growth is
//     the only way the topology changes mid-run), so the order is derived
//     once per job, not once per epoch.
//   - Per job it caches the compacted live-edge list — each task's
//     not-yet-Done children — keyed on (len(Tasks), Remaining()). Task
//     completions are the only events that change which edges are live,
//     so jobs whose task states did not change since the last epoch skip
//     the edge re-derivation entirely and reuse the compact arrays.
//   - The numeric pass (leaf terms drift with simulated time, so values
//     must be re-evaluated every epoch) iterates the cached order and
//     edge lists with slice indexing — no recursion, no map lookups, and
//     no steady-state allocation.
//
// Evaluation is lazy per job: a job pays the pass only in epochs where at
// least one of its tasks' priorities is actually demanded.
//
// A Memo belongs to one preemptor instance and is not safe for concurrent
// use, matching the engine's single-threaded epoch loop.
type Memo struct {
	jobs  map[*sim.JobState]*jobMemo
	epoch uint64 // bumped by BeginEpoch; stamps per-job evaluations

	// Per-epoch evaluation context (set by BeginEpoch).
	p    Params
	now  units.Time
	view SpeedSource
	mean float64

	// tm is the owning preemptor's phase profiler (nil when the run is
	// not profiled): evaluate charges memo-eval, rebuilds memo-rebuild.
	tm *prof.Timer
}

// jobMemo is the cached evaluation state for one job.
type jobMemo struct {
	// order is the reverse-topological task order (every task appears
	// after all of its children), valid while len(Tasks) == taskLen.
	order   []int32
	taskLen int

	// edgeStart/edgeChild compact the live (child not Done) adjacency:
	// task id's live children are edgeChild[edgeStart[id]:edgeStart[id+1]],
	// in the DAG's Children order so sums accumulate in the same sequence
	// as the recursive reference. Valid while the job's (len(Tasks),
	// live-task count) pair equals (taskLen, live) — task completion is
	// the only event that removes a live edge, and it always decrements
	// the live count.
	edgeStart []int32
	edgeChild []int32
	live      int
	structOK  bool

	// prio holds the evaluated priorities for epoch stamp.
	prio  []float64
	stamp uint64
}

// NewMemo returns an empty memo.
func NewMemo() *Memo {
	return &Memo{jobs: make(map[*sim.JobState]*jobMemo)}
}

// BeginEpoch starts a new evaluation round at time now: previously
// evaluated priorities go stale (leaf terms move with the clock) while
// the cached per-job structures stay valid until their jobs change.
func (m *Memo) BeginEpoch(p Params, now units.Time, v SpeedSource) {
	m.epoch++
	m.p = p
	m.now = now
	m.view = v
	m.mean = v.Cluster().MeanSpeed()
	// Drop cache entries for jobs that stopped demanding priorities long
	// ago (settled, or retired by a streaming engine) — without this the
	// map pins every job a long-running daemon ever saw. Amortized: the
	// sweep runs every 64 epochs and evicts entries 64+ epochs stale.
	if m.epoch%64 == 0 {
		for j, jm := range m.jobs {
			if jm.stamp+64 <= m.epoch {
				delete(m.jobs, j)
			}
		}
	}
}

// Priority returns P for t at the BeginEpoch evaluation time, evaluating
// t's whole job on first demand in the current epoch.
func (m *Memo) Priority(t *sim.TaskState) float64 {
	jm := m.jobs[t.Job]
	if jm == nil {
		jm = &jobMemo{}
		m.jobs[t.Job] = jm
	}
	if jm.stamp != m.epoch {
		m.evaluate(jm, t.Job)
		jm.stamp = m.epoch
	}
	return jm.prio[t.Task.ID]
}

// evaluate refreshes jm for job j: structural caches are revalidated (and
// rebuilt only if the job changed), then every task's priority is
// recomputed in one bottom-up pass.
func (m *Memo) evaluate(jm *jobMemo, j *sim.JobState) {
	m.tm.Enter(prof.PhaseMemoEval)
	n := len(j.Tasks)
	if jm.taskLen != n {
		m.tm.Enter(prof.PhaseMemoRebuild)
		m.rebuildOrder(jm, j)
		m.tm.Exit()
	}
	flat := m.p.FlatPriority
	if !flat {
		live := 0
		for _, t := range j.Tasks {
			if t.Phase != sim.Done {
				live++
			}
		}
		if !jm.structOK || jm.live != live {
			m.tm.Enter(prof.PhaseMemoRebuild)
			m.rebuildLiveEdges(jm, j, live)
			m.tm.Exit()
		}
	}
	if cap(jm.prio) < n {
		jm.prio = make([]float64, n)
	}
	jm.prio = jm.prio[:n]

	gamma1 := m.p.Gamma + 1
	for _, id := range jm.order {
		t := j.Tasks[id]
		var s, e int32
		if !flat {
			s, e = jm.edgeStart[id], jm.edgeStart[id+1]
		}
		if s == e {
			speed := m.mean
			if t.Node >= 0 {
				speed = m.view.Speed(t.Node)
			}
			jm.prio[id] = leafPriority(m.p, m.now, speed, t)
			continue
		}
		var p float64
		for _, ch := range jm.edgeChild[s:e] {
			p += gamma1 * jm.prio[ch]
		}
		jm.prio[id] = p
	}
	m.tm.Exit()
}

// rebuildOrder derives the reverse-topological order (children before
// parents) by Kahn's algorithm on out-degrees, ties broken by ascending
// task ID for determinism. The engine validates every DAG as acyclic
// before the run, so the order always covers all tasks.
func (m *Memo) rebuildOrder(jm *jobMemo, j *sim.JobState) {
	n := len(j.Tasks)
	if cap(jm.order) < n {
		jm.order = make([]int32, 0, n)
	}
	jm.order = jm.order[:0]
	outdeg := make([]int32, n)
	for id := 0; id < n; id++ {
		outdeg[id] = int32(len(j.Dag.Children(j.Tasks[id].Task.ID)))
		if outdeg[id] == 0 {
			jm.order = append(jm.order, int32(id))
		}
	}
	for i := 0; i < len(jm.order); i++ {
		id := jm.order[i]
		for _, p := range j.Dag.Parents(j.Tasks[id].Task.ID) {
			outdeg[p]--
			if outdeg[p] == 0 {
				jm.order = append(jm.order, int32(p))
			}
		}
	}
	jm.taskLen = n
	jm.structOK = false
}

// rebuildLiveEdges recompacts each task's not-yet-Done children into the
// flat edge arrays, preserving the DAG's Children iteration order.
func (m *Memo) rebuildLiveEdges(jm *jobMemo, j *sim.JobState, live int) {
	n := len(j.Tasks)
	if cap(jm.edgeStart) < n+1 {
		jm.edgeStart = make([]int32, n+1)
	}
	jm.edgeStart = jm.edgeStart[:n+1]
	jm.edgeChild = jm.edgeChild[:0]
	for id := 0; id < n; id++ {
		jm.edgeStart[id] = int32(len(jm.edgeChild))
		for _, ch := range j.Dag.Children(j.Tasks[id].Task.ID) {
			if j.Tasks[ch].Phase != sim.Done {
				jm.edgeChild = append(jm.edgeChild, int32(ch))
			}
		}
	}
	jm.edgeStart[n] = int32(len(jm.edgeChild))
	jm.live = live
	jm.structOK = true
}
