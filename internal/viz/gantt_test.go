package viz

import (
	"strings"
	"testing"

	"dsp/internal/attrib"
	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/trace"
	"dsp/internal/units"
)

func testCluster(n, slots int) *cluster.Cluster {
	c := &cluster.Cluster{Theta1: 0.5, Theta2: 0.5}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, &cluster.Node{
			ID: cluster.NodeID(i), SCPU: 1000, SMem: 1000, Slots: slots,
			Capacity: dag.Resources{CPU: float64(slots), Mem: 16, DiskMB: 1e6, Bandwidth: 1e3},
		})
	}
	return c
}

type rr struct{}

func (rr) Name() string { return "rr" }
func (rr) Schedule(now units.Time, pending []*sim.JobState, v *sim.View) []sim.Assignment {
	var out []sim.Assignment
	i := 0
	for _, j := range pending {
		for _, t := range j.PendingTasks() {
			out = append(out, sim.Assignment{Task: t, Node: cluster.NodeID(i % v.Cluster().Len()), Start: now})
			i++
		}
	}
	return out
}

func TestRecorderCapturesSpans(t *testing.T) {
	j := dag.NewJob(0, 3)
	for i := 0; i < 3; i++ {
		j.Task(dag.TaskID(i)).Size = 2000
	}
	j.MustDep(0, 1)
	rec := NewRecorder()
	_, err := sim.Run(sim.Config{
		Cluster:   testCluster(2, 1),
		Scheduler: rr{},
		Observer:  rec,
	}, &trace.Workload{Jobs: []*trace.Job{{Arrival: 0, DAG: j}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(rec.Spans))
	}
	for _, s := range rec.Spans {
		if s.End <= s.Start {
			t.Errorf("span %v has non-positive duration [%v,%v]", s.Task, s.Start, s.End)
		}
		if s.Preempted {
			t.Errorf("span %v marked preempted without preemption", s.Task)
		}
	}
	// Task 1 depends on task 0: its span starts at task 0's end.
	var t0End, t1Start units.Time = -1, -1
	for _, s := range rec.Spans {
		if s.Task.Task == 0 {
			t0End = s.End
		}
		if s.Task.Task == 1 {
			t1Start = s.Start
		}
	}
	if t1Start < t0End {
		t.Errorf("dependent span started at %v before parent ended at %v", t1Start, t0End)
	}
}

func TestGanttSVGStructure(t *testing.T) {
	j := dag.NewJob(0, 2)
	j.Task(0).Size = 2000
	j.Task(1).Size = 1000
	rec := NewRecorder()
	_, err := sim.Run(sim.Config{
		Cluster:   testCluster(2, 1),
		Scheduler: rr{},
		Observer:  rec,
	}, &trace.Workload{Jobs: []*trace.Job{{Arrival: 0, DAG: j}}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rec.Gantt(&sb); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	for _, want := range []string{"<svg", "</svg>", "node0", "node1", "<rect", "J0.T0"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<rect"); got != 2 {
		t.Errorf("rect count = %d, want 2", got)
	}
}

func TestGanttEmpty(t *testing.T) {
	var sb strings.Builder
	if err := NewRecorder().Gantt(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no spans") {
		t.Error("empty chart should say so")
	}
}

func TestGanttMarksPreemption(t *testing.T) {
	// One slot, two tasks; a preemptor swaps them at the first epoch.
	j := dag.NewJob(0, 2)
	j.Task(0).Size = 20000
	j.Task(1).Size = 1000
	rec := NewRecorder()
	_, err := sim.Run(sim.Config{
		Cluster:    testCluster(1, 1),
		Scheduler:  rr{},
		Preemptor:  swapOnce{},
		Checkpoint: cluster.DefaultCheckpoint(),
		Epoch:      2 * units.Second,
		Observer:   rec,
	}, &trace.Workload{Jobs: []*trace.Job{{Arrival: 0, DAG: j}}})
	if err != nil {
		t.Fatal(err)
	}
	pre := 0
	for _, s := range rec.Spans {
		if s.Preempted {
			pre++
		}
	}
	if pre == 0 {
		t.Error("no preempted span recorded")
	}
	var sb strings.Builder
	if err := rec.Gantt(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "#d62728") {
		t.Error("preempted span not highlighted")
	}
}

func TestGanttWithAttributionOverlay(t *testing.T) {
	// Two dependent tasks on separate nodes so the critical path crosses
	// bands and a connector is drawn.
	j := dag.NewJob(0, 3)
	for i := 0; i < 3; i++ {
		j.Task(dag.TaskID(i)).Size = 2000
	}
	j.MustDep(0, 1)
	rec := NewRecorder()
	arec := attrib.NewRecorder()
	_, err := sim.Run(sim.Config{
		Cluster:   testCluster(2, 1),
		Scheduler: rr{},
		Observer:  sim.Observers{rec, arec},
	}, &trace.Workload{Jobs: []*trace.Job{{Arrival: 0, DAG: j}}})
	if err != nil {
		t.Fatal(err)
	}
	jobs := arec.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("attributed %d jobs, want 1", len(jobs))
	}
	var sb strings.Builder
	if err := rec.GanttWithAttribution(&sb, jobs); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	if !strings.Contains(svg, "critical-path blame") {
		t.Error("overlay legend missing")
	}
	if !strings.Contains(svg, `stroke-width="2"`) {
		t.Error("no overlay outline group")
	}
	if !strings.Contains(svg, "path: T") {
		t.Error("no critical-path outline rects")
	}
	// Every dominant cause on the path is outlined in its own color and
	// listed in the legend.
	for _, a := range jobs {
		for _, st := range a.Path {
			c := st.Blame.Dominant()
			if !strings.Contains(svg, CauseColor(c)) {
				t.Errorf("overlay missing color for cause %s", c)
			}
			if !strings.Contains(svg, ">"+c.String()+"<") {
				t.Errorf("legend missing cause %s", c)
			}
		}
	}
	// The base chart must be intact underneath.
	for _, want := range []string{"node0", "node1", "J0.T0"} {
		if !strings.Contains(svg, want) {
			t.Errorf("overlaid SVG lost base element %q", want)
		}
	}

	// Without attributions, render falls back to the plain chart: no
	// legend, same rect count as Gantt.
	var plain strings.Builder
	if err := rec.GanttWithAttribution(&plain, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "critical-path blame") {
		t.Error("legend drawn with no attributions")
	}
}

type swapOnce struct{}

func (swapOnce) Name() string { return "swap" }
func (swapOnce) Epoch(now units.Time, v *sim.View) []sim.Action {
	if now > 2*units.Second {
		return nil
	}
	r := v.Running(0)
	q := v.Queue(0)
	if len(r) == 0 || len(q) == 0 {
		return nil
	}
	return []sim.Action{{Node: 0, Victim: r[0], Starter: q[0]}}
}
