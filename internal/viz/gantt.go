// Package viz renders simulation timelines as SVG Gantt charts. A
// Recorder (a sim.Observer) captures task execution spans during a run;
// Gantt lays them out with one band per node, lanes per concurrent slot,
// and one color per job — making schedules, preemptions (split spans)
// and idle gaps visible at a glance. GanttWithAttribution additionally
// overlays each attributed job's realized critical path, outlining the
// path's execution spans in the color of the step's dominant blame cause.
package viz

import (
	"fmt"
	"io"
	"sort"

	"dsp/internal/attrib"
	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// Span is one contiguous occupancy of a slot by a task.
type Span struct {
	Task  dag.Key
	Node  cluster.NodeID
	Start units.Time
	End   units.Time
	// Preempted marks spans that ended in a suspension rather than
	// completion (drawn with a hatched border).
	Preempted bool
}

// Recorder collects spans; attach it via sim.Config.Observer.
type Recorder struct {
	sim.NopObserver
	Spans []Span
	// open maps a task to the index of its currently open span (indices,
	// not pointers: append may reallocate Spans).
	open map[dag.Key]int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{open: make(map[dag.Key]int)}
}

// TaskStarted implements sim.Observer.
func (r *Recorder) TaskStarted(now units.Time, t *sim.TaskState, node cluster.NodeID) {
	r.Spans = append(r.Spans, Span{Task: t.Key(), Node: node, Start: now, End: -1})
	r.open[t.Key()] = len(r.Spans) - 1
}

// TaskPreempted implements sim.Observer.
func (r *Recorder) TaskPreempted(now units.Time, victim, _ *sim.TaskState, _ cluster.NodeID) {
	if i, ok := r.open[victim.Key()]; ok {
		r.Spans[i].End = now
		r.Spans[i].Preempted = true
		delete(r.open, victim.Key())
	}
}

// TaskCompleted implements sim.Observer.
func (r *Recorder) TaskCompleted(now units.Time, t *sim.TaskState, _ cluster.NodeID) {
	if i, ok := r.open[t.Key()]; ok {
		r.Spans[i].End = now
		delete(r.open, t.Key())
	}
}

// TaskEvicted implements sim.Observer: a node crash cuts the span short
// the same way a preemption does.
func (r *Recorder) TaskEvicted(now units.Time, t *sim.TaskState, _ cluster.NodeID) {
	if i, ok := r.open[t.Key()]; ok {
		r.Spans[i].End = now
		r.Spans[i].Preempted = true
		delete(r.open, t.Key())
	}
}

// palette holds distinguishable fill colors, cycled by job ID.
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// causeColors maps each blame cause to its overlay stroke color.
var causeColors = [attrib.NumCauses]string{
	attrib.CrossJobWait: "#7f7f7f",
	attrib.Dispatch:     "#1f77b4",
	attrib.QueueWait:    "#17becf",
	attrib.PreemptWait:  "#ff7f0e",
	attrib.Service:      "#2ca02c",
	attrib.Overhead:     "#bcbd22",
	attrib.PreemptLoss:  "#d62728",
	attrib.FaultLoss:    "#8c564b",
	attrib.Backoff:      "#e377c2",
	attrib.Blocked:      "#9467bd",
	attrib.Unattributed: "#c7c7c7",
}

// CauseColor returns the overlay color for a blame cause.
func CauseColor(c attrib.Cause) string {
	if c >= 0 && c < attrib.NumCauses {
		return causeColors[c]
	}
	return "#000000"
}

const (
	laneH      = 14
	nodeGap    = 8
	leftPad    = 70
	topPad     = 24
	chartWidth = 1000
	legendW    = 150
)

// layout is the resolved geometry of a chart: lane assignment per span
// and the time-to-pixel mapping, shared by the base render and the
// attribution overlay.
type layout struct {
	spans     []Span
	laneOf    []int
	yOff      map[cluster.NodeID]int
	nodeLanes map[cluster.NodeID]int
	maxNode   cluster.NodeID
	tMax      units.Time
	xScale    float64
	height    int
	// byTask indexes l.spans by task key, in start order.
	byTask map[dag.Key][]int
}

// buildLayout sorts spans, assigns lanes greedily per node and computes
// the coordinate system. Returns nil when nothing was recorded.
func (r *Recorder) buildLayout() *layout {
	if len(r.Spans) == 0 {
		return nil
	}
	l := &layout{
		spans:     append([]Span(nil), r.Spans...),
		yOff:      make(map[cluster.NodeID]int),
		nodeLanes: make(map[cluster.NodeID]int),
		byTask:    make(map[dag.Key][]int),
	}
	for _, s := range l.spans {
		if s.End > l.tMax {
			l.tMax = s.End
		}
		if s.Start > l.tMax {
			l.tMax = s.Start
		}
		if s.Node > l.maxNode {
			l.maxNode = s.Node
		}
	}
	for i := range l.spans {
		if l.spans[i].End < 0 {
			l.spans[i].End = l.tMax
		}
	}
	sort.Slice(l.spans, func(a, b int) bool {
		if l.spans[a].Node != l.spans[b].Node {
			return l.spans[a].Node < l.spans[b].Node
		}
		if l.spans[a].Start != l.spans[b].Start {
			return l.spans[a].Start < l.spans[b].Start
		}
		return l.spans[a].End < l.spans[b].End
	})

	// Greedy interval lane assignment per node.
	type laneEnd struct{ ends []units.Time }
	lanes := make(map[cluster.NodeID]*laneEnd)
	l.laneOf = make([]int, len(l.spans))
	for i, s := range l.spans {
		le := lanes[s.Node]
		if le == nil {
			le = &laneEnd{}
			lanes[s.Node] = le
		}
		placed := -1
		for li, end := range le.ends {
			if end <= s.Start {
				placed = li
				break
			}
		}
		if placed == -1 {
			le.ends = append(le.ends, s.End)
			placed = len(le.ends) - 1
		} else {
			le.ends[placed] = s.End
		}
		l.laneOf[i] = placed
		if placed+1 > l.nodeLanes[s.Node] {
			l.nodeLanes[s.Node] = placed + 1
		}
		l.byTask[s.Task] = append(l.byTask[s.Task], i)
	}

	// Vertical layout: cumulative lane offsets per node.
	y := topPad
	for n := cluster.NodeID(0); n <= l.maxNode; n++ {
		l.yOff[n] = y
		ln := l.nodeLanes[n]
		if ln == 0 {
			ln = 1
		}
		y += ln*laneH + nodeGap
	}
	l.height = y + 10
	l.xScale = float64(chartWidth-leftPad-10) / l.tMax.Seconds()
	if l.tMax == 0 {
		l.xScale = 1
	}
	return l
}

// x maps a simulation time to a pixel column.
func (l *layout) x(t units.Time) int {
	return leftPad + int(t.Seconds()*l.xScale)
}

// spanY returns span i's top pixel row.
func (l *layout) spanY(i int) int {
	return l.yOff[l.spans[i].Node] + l.laneOf[i]*laneH
}

// Gantt renders the recorded spans as an SVG document. Spans still open
// (End < 0) are clipped to the latest observed time.
func (r *Recorder) Gantt(w io.Writer) error {
	return r.render(w, nil)
}

// GanttWithAttribution renders the Gantt chart with each attributed
// job's realized critical path overlaid: the path's execution spans,
// clipped to their path windows, are outlined in the color of the step's
// dominant blame cause, consecutive steps are connected at their window
// boundaries, and a legend maps colors back to causes.
func (r *Recorder) GanttWithAttribution(w io.Writer, jobs []attrib.JobAttribution) error {
	return r.render(w, jobs)
}

func (r *Recorder) render(w io.Writer, jobs []attrib.JobAttribution) error {
	l := r.buildLayout()
	if l == nil {
		_, err := fmt.Fprint(w, `<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40"><text x="10" y="25">no spans recorded</text></svg>`)
		return err
	}
	width := chartWidth
	if len(jobs) > 0 {
		width += legendW
	}
	var werr error
	p := func(format string, args ...any) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, format, args...)
		}
	}
	p(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="10">`+"\n", width, l.height)
	p(`<text x="%d" y="14">Gantt: %d spans, %v total</text>`+"\n", leftPad, len(l.spans), l.tMax)
	for n := cluster.NodeID(0); n <= l.maxNode; n++ {
		p(`<text x="4" y="%d">node%d</text>`+"\n", l.yOff[n]+laneH-3, n)
	}
	for i, s := range l.spans {
		x := l.x(s.Start)
		wpx := int((s.End - s.Start).Seconds() * l.xScale)
		if wpx < 1 {
			wpx = 1
		}
		fill := palette[int(s.Task.Job)%len(palette)]
		stroke := "none"
		if s.Preempted {
			stroke = "#d62728"
		}
		p(`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="%s"><title>%v [%v,%v]</title></rect>`+"\n",
			x, l.spanY(i), wpx, laneH-2, fill, stroke, s.Task, s.Start, s.End)
	}
	if len(jobs) > 0 {
		r.renderOverlay(p, l, jobs)
		r.renderLegend(p, jobs)
	}
	p("</svg>\n")
	return werr
}

// renderOverlay draws the critical-path outlines and step connectors for
// every attributed job.
func (r *Recorder) renderOverlay(p func(string, ...any), l *layout, jobs []attrib.JobAttribution) {
	p(`<g fill="none" stroke-width="2">` + "\n")
	for _, a := range jobs {
		// prevX/prevY track the previous step's last outlined rect so the
		// path reads as one connected chain across nodes.
		prevX, prevY := -1, -1
		for _, st := range a.Path {
			color := CauseColor(st.Blame.Dominant())
			key := dag.Key{Job: a.Job, Task: st.Task}
			firstX, firstY := -1, -1
			lastX, lastY := -1, -1
			for _, i := range l.byTask[key] {
				s := l.spans[i]
				lo, hi := s.Start, s.End
				if lo < st.Start {
					lo = st.Start
				}
				if hi > st.End {
					hi = st.End
				}
				if hi <= lo {
					continue
				}
				x := l.x(lo)
				wpx := int((hi - lo).Seconds() * l.xScale)
				if wpx < 2 {
					wpx = 2
				}
				y := l.spanY(i)
				p(`<rect x="%d" y="%d" width="%d" height="%d" stroke="%s"><title>j%d path: T%d %s [%v,%v)</title></rect>`+"\n",
					x, y, wpx, laneH-2, color, int(a.Job), int(st.Task), st.Blame.Dominant(), lo, hi)
				if firstX < 0 {
					firstX, firstY = x, y+laneH/2
				}
				lastX, lastY = x+wpx, y+laneH/2
			}
			if firstX >= 0 && prevX >= 0 {
				p(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333" stroke-width="1" stroke-dasharray="3,2"/>`+"\n",
					prevX, prevY, firstX, firstY)
			}
			if lastX >= 0 {
				prevX, prevY = lastX, lastY
			}
		}
	}
	p("</g>\n")
}

// renderLegend lists the causes that actually appear in the overlay.
func (r *Recorder) renderLegend(p func(string, ...any), jobs []attrib.JobAttribution) {
	used := [attrib.NumCauses]bool{}
	for _, a := range jobs {
		for _, st := range a.Path {
			used[st.Blame.Dominant()] = true
		}
	}
	x := chartWidth + 8
	y := topPad
	p(`<text x="%d" y="%d" font-weight="bold">critical-path blame</text>`+"\n", x, y-8)
	for _, c := range attrib.Causes() {
		if !used[c] {
			continue
		}
		p(`<rect x="%d" y="%d" width="10" height="10" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			x, y, CauseColor(c))
		p(`<text x="%d" y="%d">%s</text>`+"\n", x+15, y+9, c.String())
		y += 16
	}
}
