// Package viz renders simulation timelines as SVG Gantt charts. A
// Recorder (a sim.Observer) captures task execution spans during a run;
// Gantt lays them out with one band per node, lanes per concurrent slot,
// and one color per job — making schedules, preemptions (split spans)
// and idle gaps visible at a glance.
package viz

import (
	"fmt"
	"io"
	"sort"

	"dsp/internal/cluster"
	"dsp/internal/dag"
	"dsp/internal/sim"
	"dsp/internal/units"
)

// Span is one contiguous occupancy of a slot by a task.
type Span struct {
	Task  dag.Key
	Node  cluster.NodeID
	Start units.Time
	End   units.Time
	// Preempted marks spans that ended in a suspension rather than
	// completion (drawn with a hatched border).
	Preempted bool
}

// Recorder collects spans; attach it via sim.Config.Observer.
type Recorder struct {
	sim.NopObserver
	Spans []Span
	// open maps a task to the index of its currently open span (indices,
	// not pointers: append may reallocate Spans).
	open map[dag.Key]int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{open: make(map[dag.Key]int)}
}

// TaskStarted implements sim.Observer.
func (r *Recorder) TaskStarted(now units.Time, t *sim.TaskState, node cluster.NodeID) {
	r.Spans = append(r.Spans, Span{Task: t.Key(), Node: node, Start: now, End: -1})
	r.open[t.Key()] = len(r.Spans) - 1
}

// TaskPreempted implements sim.Observer.
func (r *Recorder) TaskPreempted(now units.Time, victim, _ *sim.TaskState, _ cluster.NodeID) {
	if i, ok := r.open[victim.Key()]; ok {
		r.Spans[i].End = now
		r.Spans[i].Preempted = true
		delete(r.open, victim.Key())
	}
}

// TaskCompleted implements sim.Observer.
func (r *Recorder) TaskCompleted(now units.Time, t *sim.TaskState, _ cluster.NodeID) {
	if i, ok := r.open[t.Key()]; ok {
		r.Spans[i].End = now
		delete(r.open, t.Key())
	}
}

// TaskEvicted implements sim.Observer: a node crash cuts the span short
// the same way a preemption does.
func (r *Recorder) TaskEvicted(now units.Time, t *sim.TaskState, _ cluster.NodeID) {
	if i, ok := r.open[t.Key()]; ok {
		r.Spans[i].End = now
		r.Spans[i].Preempted = true
		delete(r.open, t.Key())
	}
}

// palette holds distinguishable fill colors, cycled by job ID.
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// Gantt renders the recorded spans as an SVG document. Spans still open
// (End < 0) are clipped to the latest observed time.
func (r *Recorder) Gantt(w io.Writer) error {
	spans := append([]Span(nil), r.Spans...)
	if len(spans) == 0 {
		_, err := fmt.Fprint(w, `<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40"><text x="10" y="25">no spans recorded</text></svg>`)
		return err
	}
	var tMax units.Time
	maxNode := cluster.NodeID(0)
	for _, s := range spans {
		if s.End > tMax {
			tMax = s.End
		}
		if s.Start > tMax {
			tMax = s.Start
		}
		if s.Node > maxNode {
			maxNode = s.Node
		}
	}
	for i := range spans {
		if spans[i].End < 0 {
			spans[i].End = tMax
		}
	}
	sort.Slice(spans, func(a, b int) bool {
		if spans[a].Node != spans[b].Node {
			return spans[a].Node < spans[b].Node
		}
		if spans[a].Start != spans[b].Start {
			return spans[a].Start < spans[b].Start
		}
		return spans[a].End < spans[b].End
	})

	// Greedy interval lane assignment per node.
	type laneEnd struct{ ends []units.Time }
	lanes := make(map[cluster.NodeID]*laneEnd)
	laneOf := make([]int, len(spans))
	nodeLanes := make(map[cluster.NodeID]int)
	for i, s := range spans {
		le := lanes[s.Node]
		if le == nil {
			le = &laneEnd{}
			lanes[s.Node] = le
		}
		placed := -1
		for li, end := range le.ends {
			if end <= s.Start {
				placed = li
				break
			}
		}
		if placed == -1 {
			le.ends = append(le.ends, s.End)
			placed = len(le.ends) - 1
		} else {
			le.ends[placed] = s.End
		}
		laneOf[i] = placed
		if placed+1 > nodeLanes[s.Node] {
			nodeLanes[s.Node] = placed + 1
		}
	}

	const (
		laneH   = 14
		nodeGap = 8
		leftPad = 70
		topPad  = 24
		width   = 1000
	)
	// Vertical layout: cumulative lane offsets per node.
	yOff := make(map[cluster.NodeID]int)
	y := topPad
	for n := cluster.NodeID(0); n <= maxNode; n++ {
		yOff[n] = y
		ln := nodeLanes[n]
		if ln == 0 {
			ln = 1
		}
		y += ln*laneH + nodeGap
	}
	height := y + 10
	xScale := float64(width-leftPad-10) / tMax.Seconds()
	if tMax == 0 {
		xScale = 1
	}

	var werr error
	p := func(format string, args ...any) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, format, args...)
		}
	}
	p(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="10">`+"\n", width, height)
	p(`<text x="%d" y="14">Gantt: %d spans, %v total</text>`+"\n", leftPad, len(spans), tMax)
	for n := cluster.NodeID(0); n <= maxNode; n++ {
		p(`<text x="4" y="%d">node%d</text>`+"\n", yOff[n]+laneH-3, n)
	}
	for i, s := range spans {
		x := leftPad + int(s.Start.Seconds()*xScale)
		wpx := int((s.End - s.Start).Seconds() * xScale)
		if wpx < 1 {
			wpx = 1
		}
		ys := yOff[s.Node] + laneOf[i]*laneH
		fill := palette[int(s.Task.Job)%len(palette)]
		stroke := "none"
		if s.Preempted {
			stroke = "#d62728"
		}
		p(`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="%s"><title>%v [%v,%v]</title></rect>`+"\n",
			x, ys, wpx, laneH-2, fill, stroke, s.Task, s.Start, s.End)
	}
	p("</svg>\n")
	return werr
}
