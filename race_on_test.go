//go:build race

package dsp

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation invalidates wall-clock perf guards.
const raceEnabled = true
